//! Request/response mapping between wire [`Value`]s and engine calls.
//!
//! ## Grammar (one request per line, one response per line)
//!
//! ```text
//! request  := { "cmd": <cmd>, ...fields }
//! cmd      := "load" | "append" | "motifs" | "sets" | "discords"
//!           | "stats" | "ping" | "sleep" | "save" | "shutdown" | "hello"
//!
//! load     := name, values: [f64...], hot?: [usize...], replace?: bool
//! append   := name, values: [f64...]
//! motifs   := name, min, max, top? (5), p? (50), excl? ("1/2"), deadline_ms?
//! sets     := name, min, max, k? (10), radius? (3.0), p?, excl?, deadline_ms?
//! discords := name, min, max, top? (3), p?, excl?, deadline_ms?
//! sleep    := ms, deadline_ms?          (diagnostics: occupies a worker)
//! hello    := version, capabilities?: [str...]   (version/capability handshake)
//! save     := no fields                 (flush snapshots; 0 when not durable)
//! stats / ping / shutdown := no fields
//!
//! response := { "ok": true, "cached"?: bool, "coalesced"?: true, "result": <payload> }
//!           | { "ok": false, "error": { "kind": <kind>, "message": <str> } }
//! ```
//!
//! Unknown *request* fields are rejected (typo safety, mirroring the CLI
//! parser); unknown *response* fields are tolerated, so additive markers
//! like `"coalesced"` do not bump the protocol version.

use std::time::Duration;

use valmod_mp::ExclusionPolicy;

use crate::engine::{QueryKind, QuerySpec};
use crate::error::{ServeError, ServeResult};
use crate::value::Value;

/// The protocol version this build speaks. Bumped on any wire-incompatible
/// change; the `hello` handshake lets a peer discover a mismatch *before* a
/// mid-job parse failure.
pub const PROTOCOL_VERSION: u64 = 1;

/// Longest accepted `sleep` — the diagnostic occupies a real worker thread,
/// so an unbounded `ms` is a one-request denial of service.
pub const MAX_SLEEP_MS: u64 = 60_000;

/// Longest accepted `deadline_ms` (24 h). Anything larger is a client bug or
/// a hostile value, not a plausible deadline.
pub const MAX_DEADLINE_MS: u64 = 86_400_000;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Load (or replace) a named series.
    Load {
        /// Series name.
        name: String,
        /// Samples.
        values: Vec<f64>,
        /// Lengths to keep live streaming profiles at.
        hot: Vec<usize>,
        /// Overwrite an existing series of the same name.
        replace: bool,
    },
    /// Append samples to a named series.
    Append {
        /// Series name.
        name: String,
        /// Samples to append.
        values: Vec<f64>,
    },
    /// A motif/sets/discords query.
    Query(QuerySpec),
    /// Engine statistics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Diagnostics: occupy a worker thread.
    Sleep {
        /// Milliseconds to sleep.
        ms: u64,
        /// Optional deadline.
        deadline: Option<Duration>,
    },
    /// Flush every series to a fresh snapshot (durable engines).
    Save,
    /// Graceful shutdown.
    Shutdown,
    /// Version/capability handshake: the peer announces what it speaks, the
    /// server answers with its own version and capability list.
    Hello {
        /// Protocol version the peer speaks.
        version: u64,
        /// Capability strings the peer offers (informational).
        capabilities: Vec<String>,
    },
}

impl Request {
    /// The stable wire name of this command (the `"cmd"` field), used to key
    /// per-command metrics.
    pub fn cmd_name(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Append { .. } => "append",
            Request::Query(spec) => match spec.kind {
                QueryKind::Motifs { .. } => "motifs",
                QueryKind::Sets { .. } => "sets",
                QueryKind::Discords { .. } => "discords",
            },
            Request::Stats => "stats",
            Request::Ping => "ping",
            Request::Sleep { .. } => "sleep",
            Request::Save => "save",
            Request::Shutdown => "shutdown",
            Request::Hello { .. } => "hello",
        }
    }
    /// Parses one request tree.
    pub fn from_value(v: &Value) -> ServeResult<Request> {
        let fields = match v {
            Value::Obj(fields) => fields,
            _ => return Err(ServeError::Protocol("request must be an object".into())),
        };
        let cmd = require_str(v, "cmd")?;
        let known: &[&str] = match cmd {
            "load" => &["cmd", "name", "values", "hot", "replace"],
            "append" => &["cmd", "name", "values"],
            "motifs" => &["cmd", "name", "min", "max", "top", "p", "excl", "deadline_ms"],
            "sets" => &["cmd", "name", "min", "max", "k", "radius", "p", "excl", "deadline_ms"],
            "discords" => &["cmd", "name", "min", "max", "top", "p", "excl", "deadline_ms"],
            "sleep" => &["cmd", "ms", "deadline_ms"],
            "hello" => &["cmd", "version", "capabilities"],
            "stats" | "ping" | "save" | "shutdown" => &["cmd"],
            other => return Err(ServeError::Protocol(format!("unknown command {other:?}"))),
        };
        for (k, _) in fields {
            if !known.contains(&k.as_str()) {
                return Err(ServeError::Protocol(format!("unknown field {k:?} for {cmd:?}")));
            }
        }
        match cmd {
            "load" => Ok(Request::Load {
                name: require_str(v, "name")?.to_string(),
                values: samples(v, "values")?,
                hot: match v.get("hot") {
                    None => Vec::new(),
                    Some(h) => usize_list(h, "hot")?,
                },
                replace: opt_bool(v, "replace")?.unwrap_or(false),
            }),
            "append" => Ok(Request::Append {
                name: require_str(v, "name")?.to_string(),
                values: samples(v, "values")?,
            }),
            "motifs" | "sets" | "discords" => {
                let kind = match cmd {
                    "motifs" => QueryKind::Motifs { top: opt_usize(v, "top")?.unwrap_or(5) },
                    "discords" => QueryKind::Discords { top: opt_usize(v, "top")?.unwrap_or(3) },
                    _ => QueryKind::Sets {
                        k: opt_usize(v, "k")?.unwrap_or(10),
                        radius: match v.get("radius") {
                            None => 3.0,
                            Some(r) => r
                                .as_f64()
                                .filter(|r| r.is_finite() && *r > 0.0)
                                .ok_or_else(|| bad_field("radius", "a positive number"))?,
                        },
                    },
                };
                Ok(Request::Query(QuerySpec {
                    series: require_str(v, "name")?.to_string(),
                    kind,
                    l_min: require_usize(v, "min")?,
                    l_max: require_usize(v, "max")?,
                    p: opt_usize(v, "p")?.unwrap_or(50),
                    policy: match v.get("excl") {
                        None => ExclusionPolicy::HALF,
                        Some(e) => parse_policy(
                            e.as_str().ok_or_else(|| bad_field("excl", "a \"num/den\" string"))?,
                        )?,
                    },
                    deadline: deadline_ms(v)?,
                }))
            }
            "sleep" => Ok(Request::Sleep {
                ms: require_u64_capped(v, "ms", MAX_SLEEP_MS)?,
                deadline: deadline_ms(v)?,
            }),
            "hello" => Ok(Request::Hello {
                version: require_u64_capped(v, "version", u64::MAX)?,
                capabilities: match v.get("capabilities") {
                    None => Vec::new(),
                    Some(c) => string_list(c, "capabilities")?,
                },
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "save" => Ok(Request::Save),
            "shutdown" => Ok(Request::Shutdown),
            _ => unreachable!("cmd already validated"),
        }
    }

    /// Encodes this request as a wire tree (used by the client side).
    pub fn to_value(&self) -> Value {
        match self {
            Request::Load { name, values, hot, replace } => {
                let mut fields = vec![
                    ("cmd", Value::str("load")),
                    ("name", Value::str(name)),
                    ("values", Value::Arr(values.iter().map(|&x| Value::Num(x)).collect())),
                ];
                if !hot.is_empty() {
                    fields.push(("hot", Value::Arr(hot.iter().map(|&l| Value::from(l)).collect())));
                }
                if *replace {
                    fields.push(("replace", Value::Bool(true)));
                }
                Value::obj(fields)
            }
            Request::Append { name, values } => Value::obj(vec![
                ("cmd", Value::str("append")),
                ("name", Value::str(name)),
                ("values", Value::Arr(values.iter().map(|&x| Value::Num(x)).collect())),
            ]),
            Request::Query(spec) => {
                let (cmd, extra): (&str, Vec<(&str, Value)>) = match spec.kind {
                    QueryKind::Motifs { top } => ("motifs", vec![("top", top.into())]),
                    QueryKind::Discords { top } => ("discords", vec![("top", top.into())]),
                    QueryKind::Sets { k, radius } => {
                        ("sets", vec![("k", k.into()), ("radius", radius.into())])
                    }
                };
                let mut fields = vec![
                    ("cmd", Value::str(cmd)),
                    ("name", Value::str(&spec.series)),
                    ("min", spec.l_min.into()),
                    ("max", spec.l_max.into()),
                    ("p", spec.p.into()),
                ];
                fields.extend(extra);
                let pol = spec.policy.reduced();
                if pol != ExclusionPolicy::HALF {
                    fields.push(("excl", Value::str(format!("{}/{}", pol.num(), pol.den()))));
                }
                if let Some(d) = spec.deadline {
                    fields.push(("deadline_ms", encode_millis(d)));
                }
                Value::obj(fields)
            }
            Request::Sleep { ms, deadline } => {
                let mut fields = vec![("cmd", Value::str("sleep")), ("ms", (*ms).into())];
                if let Some(d) = deadline {
                    fields.push(("deadline_ms", encode_millis(*d)));
                }
                Value::obj(fields)
            }
            Request::Stats => Value::obj(vec![("cmd", Value::str("stats"))]),
            Request::Ping => Value::obj(vec![("cmd", Value::str("ping"))]),
            Request::Save => Value::obj(vec![("cmd", Value::str("save"))]),
            Request::Shutdown => Value::obj(vec![("cmd", Value::str("shutdown"))]),
            Request::Hello { version, capabilities } => Value::obj(vec![
                ("cmd", Value::str("hello")),
                ("version", (*version).into()),
                ("capabilities", Value::Arr(capabilities.iter().map(Value::str).collect())),
            ]),
        }
    }
}

/// The server-side payload answering a `hello`: this build's protocol
/// version and capability strings.
pub fn hello_result(capabilities: &[&str]) -> Value {
    Value::obj(vec![
        ("version", PROTOCOL_VERSION.into()),
        ("capabilities", Value::Arr(capabilities.iter().map(|c| Value::str(*c)).collect())),
    ])
}

/// Decodes a `hello` response payload into `(version, capabilities)` and
/// rejects a version mismatch with a clean error naming both sides.
pub fn check_hello(result: &Value) -> ServeResult<(u64, Vec<String>)> {
    let version = result
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServeError::Protocol("hello response missing \"version\"".into()))?;
    let capabilities = match result.get("capabilities") {
        None => Vec::new(),
        Some(c) => string_list(c, "capabilities")?,
    };
    if version != PROTOCOL_VERSION {
        return Err(ServeError::Protocol(format!(
            "protocol version mismatch: peer speaks v{version}, this build speaks v{PROTOCOL_VERSION}"
        )));
    }
    Ok((version, capabilities))
}

/// Builds a success response line.
pub fn response_ok(result: Value, cached: Option<bool>) -> Value {
    response_query(result, cached, false)
}

/// Builds a success response line for a query, carrying the coalescing
/// marker when set (`"coalesced"` is additive: absent means `false`).
pub fn response_query(result: Value, cached: Option<bool>, coalesced: bool) -> Value {
    let mut fields = vec![("ok", Value::Bool(true))];
    if let Some(c) = cached {
        fields.push(("cached", Value::Bool(c)));
    }
    if coalesced {
        fields.push(("coalesced", Value::Bool(true)));
    }
    fields.push(("result", result));
    Value::obj(fields)
}

/// Builds an error response line.
pub fn response_err(err: &ServeError) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            Value::obj(vec![
                ("kind", Value::str(err.kind())),
                ("message", Value::str(err.to_string())),
            ]),
        ),
    ])
}

/// A decoded response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// The `"result"` payload of a successful response.
    pub result: Value,
    /// The `"cached"` marker, when the command reports one.
    pub cached: Option<bool>,
    /// The `"coalesced"` marker: this reply rode another request's
    /// in-flight compute. Absent on the wire means `false`.
    pub coalesced: bool,
}

impl Response {
    /// Decodes a response tree, turning `ok: false` back into the
    /// matching [`ServeError`] variant by its stable `kind` string, with
    /// a [`ServeError::Protocol`] fallback carrying kind and message.
    pub fn from_value(v: &Value) -> ServeResult<Response> {
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(Response {
                result: v.get("result").cloned().unwrap_or(Value::Null),
                cached: v.get("cached").and_then(Value::as_bool),
                coalesced: v.get("coalesced").and_then(Value::as_bool).unwrap_or(false),
            }),
            Some(false) => {
                let kind = v
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Value::as_str)
                    .unwrap_or("unknown");
                let message = v
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("");
                Err(match kind {
                    "busy" => ServeError::Busy,
                    "deadline" => ServeError::DeadlineExceeded,
                    "shutting_down" => ServeError::ShuttingDown,
                    "unknown_series" => ServeError::UnknownSeries(message.to_string()),
                    "series_exists" => ServeError::SeriesExists(message.to_string()),
                    "invalid_parameter" => ServeError::InvalidParameter(message.to_string()),
                    _ => ServeError::Protocol(format!("server error [{kind}]: {message}")),
                })
            }
            None => Err(ServeError::Protocol("response missing \"ok\" field".into())),
        }
    }
}

fn bad_field(key: &str, expected: &str) -> ServeError {
    ServeError::Protocol(format!("field {key:?} must be {expected}"))
}

fn require_str<'a>(v: &'a Value, key: &str) -> ServeResult<&'a str> {
    v.get(key).and_then(Value::as_str).ok_or_else(|| bad_field(key, "a string"))
}

fn require_usize(v: &Value, key: &str) -> ServeResult<usize> {
    v.get(key).and_then(Value::as_usize).ok_or_else(|| bad_field(key, "a non-negative integer"))
}

fn opt_usize(v: &Value, key: &str) -> ServeResult<Option<usize>> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_usize().map(Some).ok_or_else(|| bad_field(key, "a non-negative integer")),
    }
}

fn opt_bool(v: &Value, key: &str) -> ServeResult<Option<bool>> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_bool().map(Some).ok_or_else(|| bad_field(key, "a boolean")),
    }
}

fn samples(v: &Value, key: &str) -> ServeResult<Vec<f64>> {
    let arr = v.get(key).and_then(Value::as_arr).ok_or_else(|| bad_field(key, "an array"))?;
    arr.iter()
        .map(|x| x.as_f64().filter(|f| f.is_finite()))
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| bad_field(key, "an array of finite numbers"))
}

fn string_list(v: &Value, key: &str) -> ServeResult<Vec<String>> {
    let arr = v.as_arr().ok_or_else(|| bad_field(key, "an array"))?;
    arr.iter()
        .map(|x| x.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| bad_field(key, "an array of strings"))
}

fn usize_list(v: &Value, key: &str) -> ServeResult<Vec<usize>> {
    let arr = v.as_arr().ok_or_else(|| bad_field(key, "an array"))?;
    arr.iter()
        .map(Value::as_usize)
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| bad_field(key, "an array of non-negative integers"))
}

fn require_u64_capped(v: &Value, key: &str, max: u64) -> ServeResult<u64> {
    let x = v
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| bad_field(key, "a non-negative integer"))?;
    if x > max {
        return Err(ServeError::Protocol(format!("field {key:?} exceeds the maximum of {max}")));
    }
    Ok(x)
}

fn deadline_ms(v: &Value) -> ServeResult<Option<Duration>> {
    match v.get("deadline_ms") {
        None => Ok(None),
        Some(_) => {
            Ok(Some(Duration::from_millis(require_u64_capped(v, "deadline_ms", MAX_DEADLINE_MS)?)))
        }
    }
}

/// Encodes a duration in wire milliseconds. `Duration::as_millis` is `u128`,
/// so a plain `as u64` cast would silently truncate `Duration::MAX`;
/// saturate at the protocol cap instead.
fn encode_millis(d: Duration) -> Value {
    Value::from(u64::try_from(d.as_millis()).unwrap_or(u64::MAX).min(MAX_DEADLINE_MS))
}

fn parse_policy(s: &str) -> ServeResult<ExclusionPolicy> {
    let (num, den) = s
        .split_once('/')
        .and_then(|(n, d)| Some((n.trim().parse().ok()?, d.trim().parse().ok()?)))
        .filter(|&(_, d): &(usize, usize)| d > 0)
        .ok_or_else(|| bad_field("excl", "\"num/den\" with den > 0"))?;
    Ok(ExclusionPolicy::new(num, den))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> ServeResult<Request> {
        Request::from_value(&Value::parse(line).unwrap())
    }

    #[test]
    fn parses_every_command() {
        assert!(matches!(
            parse(r#"{"cmd":"load","name":"s","values":[1,2,3],"hot":[16],"replace":true}"#),
            Ok(Request::Load { replace: true, .. })
        ));
        assert!(matches!(
            parse(r#"{"cmd":"append","name":"s","values":[4.5]}"#),
            Ok(Request::Append { .. })
        ));
        let q = parse(r#"{"cmd":"motifs","name":"s","min":16,"max":32,"top":2,"deadline_ms":500}"#)
            .unwrap();
        let Request::Query(spec) = q else { panic!("expected query") };
        assert!(matches!(spec.kind, QueryKind::Motifs { top: 2 }));
        assert_eq!((spec.l_min, spec.l_max, spec.p), (16, 32, 50));
        assert_eq!(spec.deadline, Some(Duration::from_millis(500)));
        assert!(matches!(
            parse(r#"{"cmd":"sets","name":"s","min":16,"max":32,"k":4,"radius":2.5}"#),
            Ok(Request::Query(QuerySpec { kind: QueryKind::Sets { k: 4, .. }, .. }))
        ));
        assert!(matches!(
            parse(r#"{"cmd":"discords","name":"s","min":16,"max":32}"#),
            Ok(Request::Query(QuerySpec { kind: QueryKind::Discords { top: 3 }, .. }))
        ));
        assert!(matches!(parse(r#"{"cmd":"stats"}"#), Ok(Request::Stats)));
        assert!(matches!(parse(r#"{"cmd":"ping"}"#), Ok(Request::Ping)));
        assert!(matches!(parse(r#"{"cmd":"sleep","ms":5}"#), Ok(Request::Sleep { ms: 5, .. })));
        assert!(matches!(parse(r#"{"cmd":"save"}"#), Ok(Request::Save)));
        assert!(matches!(parse(r#"{"cmd":"shutdown"}"#), Ok(Request::Shutdown)));
    }

    #[test]
    fn hello_parses_roundtrips_and_negotiates() {
        let req = parse(r#"{"cmd":"hello","version":1,"capabilities":["serve"]}"#).unwrap();
        let Request::Hello { version, ref capabilities } = req else { panic!("expected hello") };
        assert_eq!(version, 1);
        assert_eq!(capabilities, &["serve".to_string()]);
        assert_eq!(req.cmd_name(), "hello");
        let rereq = Request::from_value(&req.to_value()).unwrap();
        assert_eq!(format!("{req:?}"), format!("{rereq:?}"));
        // capabilities is optional; non-string capabilities are rejected.
        assert!(matches!(parse(r#"{"cmd":"hello","version":3}"#), Ok(Request::Hello { .. })));
        assert!(parse(r#"{"cmd":"hello","version":1,"capabilities":[2]}"#).is_err());
        assert!(parse(r#"{"cmd":"hello"}"#).is_err());

        // A matching version passes negotiation, a mismatch is a clean error.
        let (v, caps) = check_hello(&hello_result(&["serve", "cluster"])).unwrap();
        assert_eq!(v, PROTOCOL_VERSION);
        assert_eq!(caps, vec!["serve".to_string(), "cluster".to_string()]);
        let stale = Value::obj(vec![("version", (PROTOCOL_VERSION + 1).into())]);
        let err = check_hello(&stale).unwrap_err();
        assert!(err.to_string().contains("version mismatch"), "{err}");
        assert!(check_hello(&Value::obj(vec![])).is_err());
    }

    #[test]
    fn excl_policy_parses() {
        let Request::Query(spec) =
            parse(r#"{"cmd":"motifs","name":"s","min":8,"max":9,"excl":"1/4"}"#).unwrap()
        else {
            panic!("expected query")
        };
        assert_eq!(spec.policy, ExclusionPolicy::QUARTER);
        assert!(parse(r#"{"cmd":"motifs","name":"s","min":8,"max":9,"excl":"1/0"}"#).is_err());
        assert!(parse(r#"{"cmd":"motifs","name":"s","min":8,"max":9,"excl":"half"}"#).is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            r#"[1,2]"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"load","name":"s"}"#,
            r#"{"cmd":"load","name":"s","values":[1,"x"]}"#,
            r#"{"cmd":"motifs","name":"s","min":16}"#,
            r#"{"cmd":"motifs","name":"s","min":16,"max":-2}"#,
            r#"{"cmd":"motifs","name":"s","min":16,"max":32,"typo":1}"#,
            r#"{"cmd":"sets","name":"s","min":16,"max":32,"radius":-1}"#,
            r#"{"cmd":"stats","name":"s"}"#,
            r#"{"cmd":"save","name":"s"}"#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn rejects_hostile_sleep_and_deadline_values() {
        // Over the caps, fractional, negative, and beyond-2^53 values are
        // all protocol errors — never truncated or wrapped by a cast.
        for bad in [
            r#"{"cmd":"sleep","ms":60001}"#,
            r#"{"cmd":"sleep","ms":1e300}"#,
            r#"{"cmd":"sleep","ms":12.5}"#,
            r#"{"cmd":"sleep","ms":-1}"#,
            r#"{"cmd":"sleep","ms":10,"deadline_ms":86400001}"#,
            r#"{"cmd":"motifs","name":"s","min":8,"max":9,"deadline_ms":1e300}"#,
            r#"{"cmd":"motifs","name":"s","min":8,"max":9,"deadline_ms":-5}"#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad}");
        }
        // The caps themselves are accepted.
        assert!(parse(r#"{"cmd":"sleep","ms":60000,"deadline_ms":86400000}"#).is_ok());
    }

    #[test]
    fn encode_millis_saturates_instead_of_truncating() {
        let spec = QuerySpec {
            series: "s".into(),
            kind: QueryKind::Motifs { top: 1 },
            l_min: 8,
            l_max: 9,
            p: 5,
            policy: ExclusionPolicy::HALF,
            deadline: Some(Duration::MAX),
        };
        let encoded = Request::Query(spec).to_value();
        assert_eq!(encoded.get("deadline_ms").and_then(Value::as_u64), Some(MAX_DEADLINE_MS));
    }

    #[test]
    fn request_roundtrips_through_to_value() {
        for line in [
            r#"{"cmd":"load","name":"s","values":[1,2.5],"hot":[16,32],"replace":true}"#,
            r#"{"cmd":"append","name":"s","values":[4.5]}"#,
            r#"{"cmd":"motifs","name":"s","min":16,"max":32,"top":2,"deadline_ms":500}"#,
            r#"{"cmd":"sets","name":"s","min":16,"max":32,"k":4,"radius":2.5}"#,
            r#"{"cmd":"discords","name":"s","min":16,"max":32,"excl":"1/4"}"#,
            r#"{"cmd":"sleep","ms":5}"#,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"save"}"#,
            r#"{"cmd":"shutdown"}"#,
        ] {
            let req = parse(line).unwrap();
            let rereq = Request::from_value(&req.to_value()).unwrap();
            // Equality via debug form (QuerySpec has no PartialEq).
            assert_eq!(format!("{req:?}"), format!("{rereq:?}"), "roundtrip of {line}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let ok = response_ok(Value::obj(vec![("x", 1usize.into())]), Some(true));
        let resp = Response::from_value(&ok).unwrap();
        assert_eq!(resp.cached, Some(true));
        assert_eq!(resp.result.get("x").unwrap().as_usize(), Some(1));
        assert!(!resp.coalesced, "absent marker decodes as false");

        let co = response_query(Value::Null, Some(false), true);
        assert!(co.encode().contains(r#""coalesced":true"#));
        assert!(Response::from_value(&co).unwrap().coalesced);

        let err = response_err(&ServeError::Busy);
        assert!(matches!(Response::from_value(&err), Err(ServeError::Busy)));
        let err = response_err(&ServeError::UnknownSeries("s".into()));
        assert!(matches!(Response::from_value(&err), Err(ServeError::UnknownSeries(_))));
        let err = response_err(&ServeError::SeriesExists("s".into()));
        assert!(matches!(Response::from_value(&err), Err(ServeError::SeriesExists(_))));
        let err = response_err(&ServeError::InvalidParameter("k".into()));
        assert!(matches!(Response::from_value(&err), Err(ServeError::InvalidParameter(_))));
        assert!(Response::from_value(&Value::Null).is_err());
    }
}
