//! End-to-end distributed tests over real loopback TCP: bit-identity with
//! the local executor across partition shapes and worker counts, survival
//! of killed and hung workers via redispatch, and clean handshake
//! rejection of incompatible workers.

use std::time::Duration;

use valmod_cluster::coordinator::{run_distributed, CoordinatorConfig};
use valmod_cluster::job::{run_local, JobSpec};
use valmod_cluster::worker::{spawn_local_workers, Fault, LocalWorker, WorkerConfig};
use valmod_data::generators::{plant_motif, random_walk};
use valmod_obs::{Registry, SharedRecorder};
use valmod_serve::Timeouts;

fn spec(n: usize, l_min: usize, l_max: usize, seed: u64) -> JobSpec {
    let (mut values, _) = plant_motif(n, l_min + 4, 2, 0.001, seed);
    // Mix in a walk so profiles have varied structure across lengths.
    let walk = random_walk(n, seed + 1);
    for (v, w) in values.iter_mut().zip(&walk) {
        *v += 0.05 * w;
    }
    JobSpec::new(format!("job-{n}-{l_min}-{l_max}-{seed}"), values, l_min, l_max)
}

fn fast_config() -> CoordinatorConfig {
    CoordinatorConfig {
        shard_timeout: Duration::from_secs(20),
        connect: Timeouts::new().with_connect(Duration::from_secs(2)).with_retries(1),
        ..CoordinatorConfig::default()
    }
}

#[test]
fn distributed_matches_local_across_worker_counts_and_partitions() {
    let spec = spec(420, 18, 24, 3);
    let reference = run_local(&spec, 1, &SharedRecorder::noop()).unwrap();
    for (worker_count, parts) in [(1usize, 1usize), (2, 3), (4, 8)] {
        let workers = spawn_local_workers(worker_count, WorkerConfig::default()).unwrap();
        let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
        let cfg = CoordinatorConfig { parts_per_length: parts, ..fast_config() };
        let run = run_distributed(&spec, &addrs, &cfg, &SharedRecorder::noop()).unwrap();
        assert!(
            run.output.bits_equal(&reference),
            "distributed must be bit-identical (workers={worker_count}, parts={parts})"
        );
        assert_eq!(run.output.body().encode(), reference.body().encode());
        let done: usize = run.workers.iter().map(|w| w.shards_done).sum();
        assert!(done > 0);
        for w in workers {
            w.shutdown();
        }
    }
}

#[test]
fn job_survives_a_worker_killed_mid_job() {
    let spec = spec(380, 16, 22, 7);
    let reference = run_local(&spec, 4, &SharedRecorder::noop()).unwrap();

    // Worker 0 answers one shard then drops every later connection without
    // replying — the protocol-level shape of a SIGKILL mid-shard.
    let killer = LocalWorker::spawn(WorkerConfig {
        fault: Some(Fault::CloseAfter { after: 1 }),
        ..WorkerConfig::default()
    })
    .unwrap();
    let healthy = LocalWorker::spawn(WorkerConfig::default()).unwrap();
    let addrs = vec![killer.addr(), healthy.addr()];

    let registry = Registry::new();
    let recorder = SharedRecorder::from(registry.clone());
    let cfg = CoordinatorConfig { parts_per_length: 4, ..fast_config() };
    let run = run_distributed(&spec, &addrs, &cfg, &recorder).unwrap();

    assert!(run.output.bits_equal(&reference), "redispatch must not change a single bit");
    assert!(run.workers[0].died, "the killed worker must be reported dead");
    assert!(!run.workers[1].died);
    let snap = registry.snapshot();
    assert!(snap.counter("cluster.shards.dispatched").unwrap_or(0) > 0);
    assert!(
        snap.counter("cluster.shards.redispatched").unwrap_or(0) > 0,
        "the dead worker's shard must be redispatched"
    );
    healthy.shutdown();
    killer.shutdown();
}

#[test]
fn job_survives_a_hung_worker_via_the_shard_deadline() {
    let spec = spec(320, 16, 20, 11);
    let reference = run_local(&spec, 3, &SharedRecorder::noop()).unwrap();

    // Worker 0 stalls every reply past the first, longer than the shard
    // deadline: the coordinator must declare it dead and move on.
    let straggler = LocalWorker::spawn(WorkerConfig {
        fault: Some(Fault::HangAfter { after: 1, stall: Duration::from_secs(2) }),
        ..WorkerConfig::default()
    })
    .unwrap();
    let healthy = LocalWorker::spawn(WorkerConfig::default()).unwrap();
    let addrs = vec![straggler.addr(), healthy.addr()];

    let registry = Registry::new();
    let recorder = SharedRecorder::from(registry.clone());
    let cfg = CoordinatorConfig {
        parts_per_length: 3,
        shard_timeout: Duration::from_millis(300),
        ..fast_config()
    };
    let run = run_distributed(&spec, &addrs, &cfg, &recorder).unwrap();

    assert!(run.output.bits_equal(&reference), "straggler redispatch must not change bits");
    assert!(run.workers[0].died, "the hung worker must be declared dead");
    let snap = registry.snapshot();
    assert!(snap.counter("cluster.shards.retried").unwrap_or(0) > 0);
    assert!(snap.counter("cluster.shards.redispatched").unwrap_or(0) > 0);
    healthy.shutdown();
    straggler.shutdown();
}

#[test]
fn incompatible_workers_are_rejected_at_the_handshake() {
    let spec = spec(260, 16, 18, 13);
    let reference = run_local(&spec, 2, &SharedRecorder::noop()).unwrap();

    let stale = LocalWorker::spawn(WorkerConfig {
        advertise_version: Some(999),
        ..WorkerConfig::default()
    })
    .unwrap();
    let healthy = LocalWorker::spawn(WorkerConfig::default()).unwrap();

    // Mixed pool: the stale worker is excluded cleanly, the job completes.
    let registry = Registry::new();
    let recorder = SharedRecorder::from(registry.clone());
    let cfg = fast_config();
    let run = run_distributed(&spec, &[stale.addr(), healthy.addr()], &cfg, &recorder).unwrap();
    assert!(run.output.bits_equal(&reference));
    let rejection = run.workers[0].rejected.as_ref().expect("stale worker rejected");
    assert!(rejection.contains("version mismatch"), "got {rejection}");
    assert_eq!(run.workers[0].shards_done, 0);
    assert!(registry.snapshot().counter("cluster.workers.rejected").unwrap_or(0) >= 1);

    // All-incompatible pool: a clean error before any work is dispatched.
    let err = run_distributed(&spec, &[stale.addr()], &cfg, &SharedRecorder::noop()).unwrap_err();
    assert!(err.to_string().contains("no compatible workers"), "got {err}");

    stale.shutdown();
    healthy.shutdown();
}

#[test]
fn a_plain_serve_server_is_rejected_for_missing_capability() {
    use valmod_serve::{EngineConfig, QueryEngine, Server};
    let server = Server::bind("127.0.0.1:0", QueryEngine::new(EngineConfig::default())).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());

    let spec = spec(200, 16, 17, 17);
    let err = run_distributed(
        &spec,
        std::slice::from_ref(&addr),
        &fast_config(),
        &SharedRecorder::noop(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("no compatible workers"), "got {err}");
    assert!(err.to_string().contains("cluster"), "rejection should name the capability: {err}");

    let mut client = valmod_serve::Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn unknown_job_answers_the_stable_error_kind() {
    let worker = LocalWorker::spawn(WorkerConfig::default()).unwrap();
    let mut client = valmod_serve::Client::connect(worker.addr()).unwrap();
    let work =
        valmod_serve::Value::parse(r#"{"cmd":"work","job":"ghost","l":16,"k_start":8,"k_end":10}"#)
            .unwrap();
    let err = client.roundtrip_value(&work).unwrap_err();
    assert!(
        matches!(err, valmod_serve::ServeError::UnknownSeries(_)),
        "unknown job must map to the unknown_series kind, got {err:?}"
    );
    // Close our connection before shutdown: the worker joins its handler
    // threads, and ours is parked reading this socket.
    drop(client);
    worker.shutdown();
}
