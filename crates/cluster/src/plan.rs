//! The partition plan: how one variable-length discovery job splits into
//! independently computable shards.
//!
//! Two axes of parallelism compose:
//!
//! * **By length** — the per-length STOMP profiles of the ℓmin..ℓmax sweep
//!   are independent until the VALMP fold, so every length is its own set
//!   of shards.
//! * **By diagonal range within one length** — [`diagonal_chunks`] splits
//!   the diagonals of one STOMP pass into cell-balanced contiguous ranges,
//!   exactly the partition the in-process parallel kernel uses; each range
//!   yields a full-length *partial* profile whose untouched slots stay at
//!   `(∞, usize::MAX)`.
//!
//! Because the lexicographic `(distance, index)` min that merges partials
//! is associative, commutative, and idempotent, the plan needs no ordering
//! or exactly-once guarantees: any execution that computes every shard *at
//! least once* merges to the same bits as a local run.

use valmod_core::validate::validate_length_range;
use valmod_data::error::Result;
use valmod_mp::diagonal_chunks;
use valmod_mp::ExclusionPolicy;

/// One unit of distributed work: the partial profile of diagonals
/// `[k_start, k_end)` at subsequence length `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// Subsequence length of this STOMP pass.
    pub l: usize,
    /// First diagonal (inclusive).
    pub k_start: usize,
    /// One past the last diagonal.
    pub k_end: usize,
}

/// The full partition plan for one job.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Series length the plan was built for.
    pub n: usize,
    /// Shards in dispatch order (ascending length, then ascending range).
    pub shards: Vec<Shard>,
}

impl Plan {
    /// Builds the plan for a series of `n` samples over `[l_min, l_max]`,
    /// splitting each length into at most `parts_per_length` diagonal
    /// ranges (clamped to ≥ 1; lengths whose exclusion zone covers every
    /// diagonal contribute no shards — their profile is all-infinite).
    pub fn build(
        n: usize,
        l_min: usize,
        l_max: usize,
        policy: ExclusionPolicy,
        parts_per_length: usize,
    ) -> Result<Plan> {
        validate_length_range(n, l_min, l_max)?;
        let parts = parts_per_length.max(1);
        let mut shards = Vec::new();
        for l in l_min..=l_max {
            let ndp = n - l + 1;
            let radius = policy.radius(l);
            for (k_start, k_end) in diagonal_chunks(ndp, radius, parts) {
                shards.push(Shard { l, k_start, k_end });
            }
        }
        Ok(Plan { n, shards })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan has no shards (every length fully excluded).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_diagonal_of_every_length_exactly_once() {
        let plan = Plan::build(300, 16, 24, ExclusionPolicy::HALF, 3).unwrap();
        for l in 16..=24 {
            let ndp = 300 - l + 1;
            let radius = ExclusionPolicy::HALF.radius(l);
            let ranges: Vec<_> =
                plan.shards.iter().filter(|s| s.l == l).map(|s| (s.k_start, s.k_end)).collect();
            let mut next = radius;
            for &(s, e) in &ranges {
                assert_eq!(s, next, "l={l}");
                assert!(e > s);
                next = e;
            }
            assert_eq!(next, ndp, "l={l}");
        }
    }

    #[test]
    fn parts_clamp_and_degenerate_lengths() {
        // parts=0 clamps to 1: one shard per length.
        let plan = Plan::build(100, 10, 12, ExclusionPolicy::HALF, 0).unwrap();
        assert_eq!(plan.len(), 3);
        // A length whose exclusion zone covers everything contributes none.
        let tight = Plan::build(12, 10, 10, ExclusionPolicy::HALF, 2).unwrap();
        assert!(tight.is_empty());
        // Inverted ranges are validation errors, not empty plans.
        assert!(Plan::build(100, 20, 10, ExclusionPolicy::HALF, 2).is_err());
    }
}
