//! Job specification, the deterministic output body, and the local
//! (in-process) executor that distributed runs are held bit-identical to.
//!
//! A cluster job computes the **exact** per-length STOMP profile for every
//! ℓ in `[l_min, l_max]` (sharded by diagonal range), folds them into a
//! VALMP in ascending-length order, and extracts the top variable-length
//! motifs. This is the paper's exhaustive baseline shape rather than the
//! single-node LB-pruned VALMOD walk — the LB walk's sub-MP passes are
//! sequentially dependent on state harvested at ℓ_min and cannot be
//! partitioned without changing bits, whereas exact per-length profiles
//! merge bit-identically from any shard partition.

use valmod_core::ranking::top_variable_length_motifs;
use valmod_core::valmp::Valmp;
use valmod_data::error::{Result, ValmodError};
use valmod_data::io::fnv1a64;
use valmod_mp::motif::MotifPair;
use valmod_mp::{
    lex_update, merge_partial, stomp_diagonal_range_ws, ExclusionPolicy, MatrixProfile,
    ProfiledSeries, Workspace,
};
use valmod_obs::{Recorder, SharedRecorder};
use valmod_serve::Value;

use crate::plan::Plan;

/// What to compute, over which series.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job identifier (scopes worker-side series caches; not part of the
    /// output body, so two runs of the same data compare byte-for-byte).
    pub job_id: String,
    /// The raw series.
    pub values: Vec<f64>,
    /// Shortest subsequence length.
    pub l_min: usize,
    /// Longest subsequence length.
    pub l_max: usize,
    /// Exclusion policy applied at every length.
    pub policy: ExclusionPolicy,
    /// How many ranked motifs to report.
    pub top: usize,
}

impl JobSpec {
    /// A spec with the defaults the CLI uses (`HALF` exclusion, top 5).
    pub fn new(job_id: impl Into<String>, values: Vec<f64>, l_min: usize, l_max: usize) -> JobSpec {
        JobSpec {
            job_id: job_id.into(),
            values,
            l_min,
            l_max,
            policy: ExclusionPolicy::HALF,
            top: 5,
        }
    }
}

/// The merged result of one job: every per-length profile plus the derived
/// VALMP ranking.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Series length.
    pub n: usize,
    /// Length range the job covered.
    pub l_min: usize,
    /// Longest length.
    pub l_max: usize,
    /// Exclusion policy used.
    pub policy: ExclusionPolicy,
    /// Exact per-length profiles, ascending length.
    pub profiles: Vec<MatrixProfile>,
    /// Top ranked variable-length motifs (overlap-suppressed).
    pub motifs: Vec<MotifPair>,
    /// The single best variable-length pair, if any slot is finite.
    pub best: Option<MotifPair>,
}

impl JobOutput {
    /// Derives the VALMP fold and motif ranking from merged per-length
    /// profiles (which must be ascending in `l` and cover
    /// `l_min..=l_max`).
    pub fn from_profiles(spec: &JobSpec, profiles: Vec<MatrixProfile>) -> Result<JobOutput> {
        let expected = spec.l_max - spec.l_min + 1;
        if profiles.len() != expected {
            return Err(ValmodError::InvalidParameter(format!(
                "expected {expected} per-length profiles, got {}",
                profiles.len()
            )));
        }
        let ndp = spec.values.len() - spec.l_min + 1;
        let mut valmp = Valmp::new(ndp);
        for (i, profile) in profiles.iter().enumerate() {
            let l = spec.l_min + i;
            if profile.l != l {
                return Err(ValmodError::InvalidParameter(format!(
                    "profile {i} has length {}, expected {l}",
                    profile.l
                )));
            }
            valmp.update(&profile.mp, &profile.ip, l);
        }
        let motifs = top_variable_length_motifs(&valmp, spec.top, spec.policy);
        let best = valmp.best_pair();
        Ok(JobOutput {
            n: spec.values.len(),
            l_min: spec.l_min,
            l_max: spec.l_max,
            policy: spec.policy,
            profiles,
            motifs,
            best,
        })
    }

    /// The canonical response body. Deterministic in the profile bits: the
    /// ranked motif list rides alongside a per-length FNV-1a digest over
    /// every `mp` bit pattern and `ip` index, so a byte-for-byte diff of
    /// two bodies is as strong as comparing the full profiles.
    pub fn body(&self) -> Value {
        let pol = self.policy.reduced();
        let lengths = self
            .profiles
            .iter()
            .map(|p| {
                Value::obj(vec![
                    ("l", p.l.into()),
                    ("finite", p.mp.iter().filter(|d| d.is_finite()).count().into()),
                    ("fnv", Value::str(format!("{:016x}", profile_fnv(p)))),
                ])
            })
            .collect();
        Value::obj(vec![
            ("n", self.n.into()),
            ("l_min", self.l_min.into()),
            ("l_max", self.l_max.into()),
            ("excl", Value::str(format!("{}/{}", pol.num(), pol.den()))),
            ("lengths", Value::Arr(lengths)),
            ("motifs", Value::Arr(self.motifs.iter().map(pair_value).collect())),
            ("best", self.best.as_ref().map_or(Value::Null, pair_value)),
        ])
    }

    /// Bitwise equality over every per-length profile (`to_bits` on each
    /// distance, exact on each index) plus the derived ranking.
    pub fn bits_equal(&self, other: &JobOutput) -> bool {
        self.n == other.n
            && self.profiles.len() == other.profiles.len()
            && self.profiles.iter().zip(&other.profiles).all(|(a, b)| {
                a.l == b.l
                    && a.mp.len() == b.mp.len()
                    && a.mp.iter().zip(&b.mp).all(|(x, y)| x.to_bits() == y.to_bits())
                    && a.ip == b.ip
            })
            && self.body().encode() == other.body().encode()
    }
}

fn pair_value(pair: &MotifPair) -> Value {
    Value::obj(vec![
        ("a", pair.a.into()),
        ("b", pair.b.into()),
        ("l", pair.l.into()),
        ("dist", Value::Num(pair.dist)),
        ("norm_dist", Value::Num(pair.norm_dist())),
    ])
}

/// FNV-1a digest over a profile's exact bit content.
fn profile_fnv(p: &MatrixProfile) -> u64 {
    let mut bytes = Vec::with_capacity(p.mp.len() * 16);
    for (&d, &j) in p.mp.iter().zip(&p.ip) {
        bytes.extend_from_slice(&d.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(j as u64).to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Executes the *same plan* a distributed run would use, in process:
/// every shard computed with [`stomp_diagonal_range_ws`] and min-merged
/// with [`merge_partial`]. This is the byte-for-byte reference the check
/// oracle and the CI smoke test diff distributed bodies against.
pub fn run_local(
    spec: &JobSpec,
    parts_per_length: usize,
    recorder: &SharedRecorder,
) -> Result<JobOutput> {
    let plan =
        Plan::build(spec.values.len(), spec.l_min, spec.l_max, spec.policy, parts_per_length)?;
    let ps = ProfiledSeries::from_values(&spec.values)?;
    let mut ws = Workspace::new();
    let mut profiles = empty_profiles(spec);
    for shard in &plan.shards {
        let partial = stomp_diagonal_range_ws(
            &ps,
            shard.l,
            spec.policy,
            (shard.k_start, shard.k_end),
            &mut ws,
        )?;
        merge_partial(&mut profiles[shard.l - spec.l_min], &partial);
        if recorder.enabled() {
            recorder.add("cluster.local.shards", 1);
        }
    }
    JobOutput::from_profiles(spec, profiles)
}

/// One all-infinite profile per length in the spec's range — the identity
/// element every shard partial merges into.
pub(crate) fn empty_profiles(spec: &JobSpec) -> Vec<MatrixProfile> {
    (spec.l_min..=spec.l_max)
        .map(|l| {
            let ndp = spec.values.len() - l + 1;
            MatrixProfile {
                l,
                mp: vec![f64::INFINITY; ndp],
                ip: vec![usize::MAX; ndp],
                exclusion_radius: spec.policy.radius(l),
            }
        })
        .collect()
}

/// Merges one decoded wire partial into the right per-length profile.
pub(crate) fn merge_wire_partial(
    profiles: &mut [MatrixProfile],
    l_min: usize,
    l: usize,
    mp: &[f64],
    ip: &[usize],
) -> Result<()> {
    let idx = l
        .checked_sub(l_min)
        .filter(|&i| i < profiles.len())
        .ok_or_else(|| ValmodError::InvalidParameter(format!("partial for out-of-range l={l}")))?;
    let dst = &mut profiles[idx];
    if mp.len() != dst.mp.len() || ip.len() != dst.ip.len() {
        return Err(ValmodError::InvalidParameter(format!(
            "partial for l={l} has {} slots, expected {}",
            mp.len(),
            dst.mp.len()
        )));
    }
    for i in 0..mp.len() {
        lex_update(&mut dst.mp[i], &mut dst.ip[i], mp[i], ip[i]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::plant_motif;
    use valmod_mp::stomp::stomp;

    fn spec() -> JobSpec {
        let (values, _) = plant_motif(600, 24, 2, 0.001, 11);
        JobSpec::new("t", values, 16, 28)
    }

    #[test]
    fn local_run_matches_unsharded_stomp_per_length() {
        let spec = spec();
        let out = run_local(&spec, 3, &SharedRecorder::noop()).unwrap();
        let ps = ProfiledSeries::from_values(&spec.values).unwrap();
        for profile in &out.profiles {
            let oracle = stomp(&ps, profile.l, spec.policy).unwrap();
            for i in 0..oracle.len() {
                assert_eq!(
                    profile.mp[i].to_bits(),
                    oracle.mp[i].to_bits(),
                    "l={} i={i}",
                    profile.l
                );
                assert_eq!(profile.ip[i], oracle.ip[i], "l={} i={i}", profile.l);
            }
        }
        assert!(!out.motifs.is_empty(), "planted motif must rank");
        assert!(out.best.is_some());
    }

    #[test]
    fn partition_shape_does_not_change_the_body() {
        let spec = spec();
        let reference = run_local(&spec, 1, &SharedRecorder::noop()).unwrap();
        for parts in [2usize, 5, 16] {
            let out = run_local(&spec, parts, &SharedRecorder::noop()).unwrap();
            assert!(out.bits_equal(&reference), "parts={parts}");
            assert_eq!(out.body().encode(), reference.body().encode(), "parts={parts}");
        }
    }

    #[test]
    fn body_digest_is_sensitive_to_profile_bits() {
        let spec = spec();
        let out = run_local(&spec, 2, &SharedRecorder::noop()).unwrap();
        let mut tweaked = out.clone();
        // Flip one mantissa bit in one slot of one profile.
        let slot = tweaked.profiles[0].mp.iter().position(|d| d.is_finite()).unwrap();
        let bits = tweaked.profiles[0].mp[slot].to_bits() ^ 1;
        tweaked.profiles[0].mp[slot] = f64::from_bits(bits);
        assert_ne!(out.body().encode(), tweaked.body().encode());
        assert!(!out.bits_equal(&tweaked));
    }

    #[test]
    fn from_profiles_rejects_wrong_shapes() {
        let spec = spec();
        let mut profiles = empty_profiles(&spec);
        profiles.pop();
        assert!(JobOutput::from_profiles(&spec, profiles).is_err());
        let mut profiles = empty_profiles(&spec);
        profiles[0].l += 1;
        assert!(JobOutput::from_profiles(&spec, profiles).is_err());
    }
}
