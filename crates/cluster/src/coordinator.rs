//! The coordinator: validates a worker pool, dispatches plan shards, and
//! merges partial profiles into a result bit-identical to a local run.
//!
//! ## Fault model
//!
//! * **Incompatible worker** — the `hello` handshake happens before any
//!   work is dispatched; a version mismatch or missing `cluster`
//!   capability excludes the worker with a clean error (never a mid-job
//!   parse failure). The job proceeds if at least one worker validates.
//! * **Transient failure** — an I/O error or per-shard deadline expiry
//!   drops the connection; the same worker thread retries with the
//!   client's jittered backoff, re-shipping the series if the worker
//!   restarted (`unknown_series`).
//! * **Dead worker** — after `worker_attempts` consecutive failures the
//!   worker is declared dead and its in-flight shard goes back on the
//!   shared queue for survivors. A job completes as long as one validated
//!   worker lives.
//!
//! ## Exactly-once *merging* without exactly-once *execution*
//!
//! Redispatch means a shard can be computed twice (the first worker may
//! have died after the compute but before the reply). The merge is a
//! slot-wise lexicographic `(distance, index)` min — associative,
//! commutative, and idempotent — so duplicate partials change nothing:
//! at-least-once execution yields exactly-once semantics by algebra, not
//! by bookkeeping.

use std::collections::{HashSet, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use valmod_data::error::{Result, ValmodError};
use valmod_mp::MatrixProfile;
use valmod_obs::{Recorder, SharedRecorder};
use valmod_serve::{Client, Response, ServeError, Timeouts};

use crate::job::{empty_profiles, merge_wire_partial, JobOutput, JobSpec};
use crate::plan::{Plan, Shard};
use crate::wire::{decode_partial, ClusterRequest};

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Diagonal ranges per length (0 = one per worker).
    pub parts_per_length: usize,
    /// Per-shard deadline: if a worker has not answered a `work` within
    /// this window it is treated as failed (hung workers trip this).
    pub shard_timeout: Duration,
    /// Connect/backoff policy for worker connections (its read timeout is
    /// overridden by `shard_timeout`).
    pub connect: Timeouts,
    /// Consecutive failures before a worker is declared dead and its shard
    /// is redispatched to survivors.
    pub worker_attempts: u32,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            parts_per_length: 0,
            shard_timeout: Duration::from_secs(60),
            connect: Timeouts::new().with_connect(Duration::from_secs(2)).with_retries(2),
            worker_attempts: 2,
        }
    }
}

/// How one worker fared over the whole job (for logs and tests).
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The worker's address.
    pub addr: String,
    /// Shards successfully computed by this worker.
    pub shards_done: usize,
    /// Whether the worker was excluded by the `hello` handshake.
    pub rejected: Option<String>,
    /// Whether the worker died mid-job.
    pub died: bool,
}

/// A distributed run's result plus per-worker accounting.
#[derive(Debug)]
pub struct DistributedRun {
    /// The merged output (bit-identical to a local run of the same spec).
    pub output: JobOutput,
    /// Per-worker outcomes, in input order.
    pub workers: Vec<WorkerReport>,
}

struct MergeState {
    profiles: Vec<MatrixProfile>,
    completed: HashSet<Shard>,
}

struct SharedState {
    pending: Mutex<VecDeque<Shard>>,
    merged: Mutex<MergeState>,
    total: usize,
}

impl SharedState {
    fn done(&self) -> bool {
        self.merged.lock().expect("merge lock").completed.len() == self.total
    }
}

/// Runs `spec` across `workers` (each a `host:port` string), returning the
/// merged output and per-worker accounting. Fails only if no worker passes
/// the handshake or every validated worker dies before the plan finishes.
pub fn run_distributed(
    spec: &JobSpec,
    workers: &[String],
    cfg: &CoordinatorConfig,
    recorder: &SharedRecorder,
) -> Result<DistributedRun> {
    if workers.is_empty() {
        return Err(ValmodError::InvalidParameter("no workers given".into()));
    }
    let parts = if cfg.parts_per_length == 0 { workers.len() } else { cfg.parts_per_length };
    let plan = Plan::build(spec.values.len(), spec.l_min, spec.l_max, spec.policy, parts)?;

    // Phase 1: validate the pool. A version mismatch or a missing
    // `cluster` capability is a clean, permanent rejection.
    let mut reports: Vec<WorkerReport> = workers
        .iter()
        .map(|addr| WorkerReport {
            addr: addr.clone(),
            shards_done: 0,
            rejected: None,
            died: false,
        })
        .collect();
    let mut validated: Vec<usize> = Vec::new();
    for (idx, addr) in workers.iter().enumerate() {
        match validate_worker(addr, idx, cfg) {
            Ok(()) => validated.push(idx),
            Err(e) => {
                recorder.add("cluster.workers.rejected", 1);
                reports[idx].rejected = Some(e.to_string());
            }
        }
    }
    if validated.is_empty() {
        let detail = reports
            .iter()
            .filter_map(|r| r.rejected.as_ref().map(|e| format!("{}: {e}", r.addr)))
            .collect::<Vec<_>>()
            .join("; ");
        return Err(ValmodError::InvalidParameter(format!("no compatible workers ({detail})")));
    }

    // Phase 2: dispatch. One thread per validated worker pulls from the
    // shared queue; dead workers requeue their in-flight shard.
    let shared = SharedState {
        pending: Mutex::new(plan.shards.iter().copied().collect()),
        merged: Mutex::new(MergeState {
            profiles: empty_profiles(spec),
            completed: HashSet::new(),
        }),
        total: plan.len(),
    };
    let outcomes: Vec<(usize, usize, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = validated
            .iter()
            .map(|&idx| {
                let addr = workers[idx].clone();
                let shared = &shared;
                scope.spawn(move || {
                    let done = worker_loop(&addr, idx, spec, cfg, shared, recorder);
                    (idx, done.0, done.1)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("coordinator worker thread")).collect()
    });
    for (idx, shards_done, died) in outcomes {
        reports[idx].shards_done = shards_done;
        reports[idx].died = died;
    }

    let merged = shared.merged.into_inner().expect("merge lock");
    if merged.completed.len() != shared.total {
        return Err(ValmodError::InvalidParameter(format!(
            "job incomplete: {}/{} shards merged — every validated worker died",
            merged.completed.len(),
            shared.total
        )));
    }

    // Best-effort cleanup: evict the job from surviving workers.
    for report in reports.iter().filter(|r| r.rejected.is_none() && !r.died) {
        let _ = drop_job(&report.addr, &spec.job_id, cfg);
    }

    let output = JobOutput::from_profiles(spec, merged.profiles)?;
    Ok(DistributedRun { output, workers: reports })
}

fn client_timeouts(cfg: &CoordinatorConfig, idx: usize) -> Timeouts {
    let mut t = cfg.connect.clone().with_read(cfg.shard_timeout);
    // Decorrelate the retry storms of distinct worker threads.
    t.jitter_seed ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1);
    t
}

fn validate_worker(addr: &str, idx: usize, cfg: &CoordinatorConfig) -> Result<()> {
    let mut client = Client::connect_with(addr, &client_timeouts(cfg, idx))?;
    let caps = client.hello(&["coordinator"])?;
    if !caps.iter().any(|c| c == "cluster") {
        return Err(ValmodError::InvalidParameter(format!(
            "worker {addr} lacks the \"cluster\" capability (offers {caps:?})"
        )));
    }
    // Health check: a validated worker must answer PING promptly.
    roundtrip(&mut client, &ClusterRequest::Ping)?;
    Ok(())
}

fn drop_job(addr: &str, job: &str, cfg: &CoordinatorConfig) -> Result<()> {
    let timeouts = cfg.connect.clone().with_read(Duration::from_secs(2));
    let mut client = Client::connect_with(addr, &timeouts)?;
    roundtrip(&mut client, &ClusterRequest::DropJob { job: job.to_string() })?;
    Ok(())
}

fn roundtrip(client: &mut Client, request: &ClusterRequest) -> Result<Response> {
    client.roundtrip_value(&request.to_value())
}

/// Runs one worker's dispatch loop; returns `(shards_done, died)`.
fn worker_loop(
    addr: &str,
    idx: usize,
    spec: &JobSpec,
    cfg: &CoordinatorConfig,
    shared: &SharedState,
    recorder: &SharedRecorder,
) -> (usize, bool) {
    let timeouts = client_timeouts(cfg, idx);
    let hist_key = format!("cluster.worker.w{idx}.shard_us");
    let mut conn: Option<Client> = None;
    let mut loaded = false;
    let mut failures = 0u32;
    let mut shards_done = 0usize;

    'outer: while !shared.done() {
        let shard = shared.pending.lock().expect("pending lock").pop_front();
        let Some(shard) = shard else {
            // Queue empty but the job is not done: another worker holds the
            // remaining shards in flight. Stay available in case it dies.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };

        // Work on `shard` until merged or this worker is declared dead.
        loop {
            if conn.is_none() {
                match Client::connect_with(addr, &timeouts) {
                    Ok(mut c) => match c.hello(&["coordinator"]) {
                        Ok(_) => {
                            conn = Some(c);
                            loaded = false;
                        }
                        Err(_) => failures += 1,
                    },
                    Err(_) => failures += 1,
                }
                if conn.is_none() {
                    if failures > cfg.worker_attempts {
                        requeue(shared, shard, recorder);
                        return (shards_done, true);
                    }
                    continue;
                }
            }
            if !loaded {
                let load = ClusterRequest::LoadJob {
                    job: spec.job_id.clone(),
                    values: spec.values.clone(),
                    policy: spec.policy,
                };
                match roundtrip(conn.as_mut().expect("connection just established"), &load) {
                    Ok(_) => loaded = true,
                    Err(_) => {
                        conn = None;
                        failures += 1;
                        if failures > cfg.worker_attempts {
                            requeue(shared, shard, recorder);
                            return (shards_done, true);
                        }
                        continue;
                    }
                }
            }
            recorder.add("cluster.shards.dispatched", 1);
            let started = Instant::now();
            let work = ClusterRequest::Work { job: spec.job_id.clone(), shard };
            match roundtrip(conn.as_mut().expect("loaded connection"), &work) {
                Ok(response) => {
                    if recorder.enabled() {
                        recorder.observe(&hist_key, started.elapsed().as_micros() as f64);
                    }
                    match decode_partial(&response.result) {
                        Ok((got, mp, ip)) if got == shard => {
                            let mut merged = shared.merged.lock().expect("merge lock");
                            if merge_wire_partial(&mut merged.profiles, spec.l_min, got.l, &mp, &ip)
                                .is_err()
                            {
                                // A malformed partial is a worker bug, not a
                                // transient fault: declare the worker dead.
                                drop(merged);
                                requeue(shared, shard, recorder);
                                return (shards_done, true);
                            }
                            merged.completed.insert(shard);
                            failures = 0;
                            shards_done += 1;
                            continue 'outer;
                        }
                        _ => {
                            requeue(shared, shard, recorder);
                            return (shards_done, true);
                        }
                    }
                }
                Err(ServeError::UnknownSeries(_)) => {
                    // The worker restarted and lost the job: re-ship it.
                    recorder.add("cluster.shards.retried", 1);
                    loaded = false;
                    continue;
                }
                Err(_) => {
                    // I/O error or shard deadline: reconnect and retry here,
                    // then give the shard to survivors.
                    recorder.add("cluster.shards.retried", 1);
                    conn = None;
                    failures += 1;
                    if failures > cfg.worker_attempts {
                        requeue(shared, shard, recorder);
                        return (shards_done, true);
                    }
                }
            }
        }
    }
    (shards_done, false)
}

fn requeue(shared: &SharedState, shard: Shard, recorder: &SharedRecorder) {
    recorder.add("cluster.shards.redispatched", 1);
    shared.pending.lock().expect("pending lock").push_back(shard);
}
