//! The cluster worker: a small line-protocol TCP server that caches one
//! profiled series per job and answers `work` requests with diagonal-range
//! partial profiles.
//!
//! A worker is deliberately stateless beyond its job cache — if it crashes
//! and restarts, the coordinator's `unknown_series` handling re-ships the
//! series and the shard is recomputed; the idempotent merge makes the
//! duplicate harmless. The optional [`Fault`] plan injects protocol-level
//! failures (abrupt close ≈ SIGKILL, pre-reply hangs ≈ stragglers) for the
//! check oracle and the integration tests.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use valmod_mp::{stomp_diagonal_range_ws, ExclusionPolicy, ProfiledSeries, Workspace};
use valmod_obs::{Recorder, SharedRecorder};
use valmod_serve::protocol::{hello_result, response_err, response_ok};
use valmod_serve::{
    read_bounded_line, LineRead, ServeError, ServeResult, Value, DEFAULT_MAX_LINE_BYTES,
};

use crate::wire::{encode_partial, ClusterRequest, WORKER_CAPABILITIES};

/// A deliberate failure mode for fault-matrix testing.
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Close the connection without replying once `after` `work` commands
    /// have completed — the protocol-level shape of a SIGKILL mid-shard.
    CloseAfter {
        /// Number of successful `work` replies before the drop.
        after: usize,
    },
    /// Sleep before replying to every `work` past the first `after` — a
    /// straggler that trips the coordinator's per-shard deadline.
    HangAfter {
        /// Number of prompt `work` replies before hanging starts.
        after: usize,
        /// How long each hung reply stalls.
        stall: Duration,
    },
}

/// Worker construction options.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Per-request line cap (shared default with `valmod-serve`).
    pub max_line_bytes: usize,
    /// Optional injected failure mode.
    pub fault: Option<Fault>,
    /// Protocol version to advertise in `hello` (tests use a wrong one to
    /// exercise coordinator-side rejection). `None` = this build's version.
    pub advertise_version: Option<u64>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            fault: None,
            advertise_version: None,
        }
    }
}

/// Shared worker state: the per-job series cache and fault accounting.
struct WorkerState {
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    config: WorkerConfig,
    recorder: SharedRecorder,
    work_done: AtomicUsize,
}

struct Job {
    ps: ProfiledSeries,
    policy: ExclusionPolicy,
}

/// A bound-but-not-yet-running cluster worker.
pub struct Worker {
    listener: TcpListener,
    state: Arc<WorkerState>,
    stop: Arc<AtomicBool>,
}

impl Worker {
    /// Binds to `addr` (port 0 for ephemeral).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: WorkerConfig,
        recorder: SharedRecorder,
    ) -> ServeResult<Worker> {
        let listener = TcpListener::bind(addr)?;
        Ok(Worker {
            listener,
            state: Arc::new(WorkerState {
                jobs: Mutex::new(HashMap::new()),
                config,
                recorder,
                work_done: AtomicUsize::new(0),
            }),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> ServeResult<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves until a `shutdown` command arrives.
    pub fn run(self) -> ServeResult<()> {
        let addr = self.local_addr()?;
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(ServeError::Io(e));
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&self.stop);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, state, &stop, addr);
            }));
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    state: Arc<WorkerState>,
    stop: &AtomicBool,
    worker_addr: SocketAddr,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // One workspace per connection: FFT plans and buffers are reused across
    // every shard this coordinator connection dispatches.
    let mut ws = Workspace::new();
    loop {
        let line = match read_bounded_line(&mut reader, state.config.max_line_bytes) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::TooLong) => {
                let err = ServeError::Protocol("request line exceeds the line limit".into());
                let _ = write_line(&mut writer, response_err(&err));
                return;
            }
            Ok(LineRead::NotUtf8) => {
                let err = ServeError::Protocol("request line is not valid UTF-8".into());
                let _ = write_line(&mut writer, response_err(&err));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Value::parse(&line).and_then(|v| ClusterRequest::from_value(&v)) {
            Ok(req) => req,
            Err(e) => {
                if !write_line(&mut writer, response_err(&e)) {
                    return;
                }
                continue;
            }
        };
        if state.recorder.enabled() {
            state.recorder.add(&format!("cluster.worker.cmd.{}", request.cmd_name()), 1);
        }
        let shutdown = matches!(request, ClusterRequest::Shutdown);
        match execute(&state, request, &mut ws) {
            Outcome::Reply(response) => {
                if !write_line(&mut writer, response) {
                    return;
                }
            }
            Outcome::Drop => {
                // Injected fault: vanish without a reply, like a kill -9.
                if let Ok(s) = writer.try_clone() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                return;
            }
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(worker_addr);
            return;
        }
    }
}

enum Outcome {
    Reply(Value),
    Drop,
}

fn execute(state: &WorkerState, request: ClusterRequest, ws: &mut Workspace) -> Outcome {
    match request {
        ClusterRequest::Hello { .. } => {
            let version = state.config.advertise_version.unwrap_or(valmod_serve::PROTOCOL_VERSION);
            // Same payload shape as `hello_result`, with an overridable
            // version for the incompatibility tests.
            let mut v = hello_result(WORKER_CAPABILITIES);
            if let Value::Obj(fields) = &mut v {
                for (k, val) in fields.iter_mut() {
                    if k == "version" {
                        *val = version.into();
                    }
                }
            }
            Outcome::Reply(response_ok(v, None))
        }
        ClusterRequest::Ping => Outcome::Reply(response_ok(Value::str("pong"), None)),
        ClusterRequest::LoadJob { job, values, policy } => {
            let ps = match ProfiledSeries::from_values(&values) {
                Ok(ps) => ps,
                Err(e) => return Outcome::Reply(response_err(&e)),
            };
            let len = values.len();
            state.jobs.lock().expect("jobs lock").insert(job.clone(), Arc::new(Job { ps, policy }));
            Outcome::Reply(response_ok(
                Value::obj(vec![("job", Value::str(&job)), ("len", len.into())]),
                None,
            ))
        }
        ClusterRequest::Work { job, shard } => {
            let entry = state.jobs.lock().expect("jobs lock").get(&job).cloned();
            let Some(entry) = entry else {
                // Stable kind the coordinator reacts to by re-sending the job.
                return Outcome::Reply(response_err(&ServeError::UnknownSeries(job)));
            };
            let partial = match stomp_diagonal_range_ws(
                &entry.ps,
                shard.l,
                entry.policy,
                (shard.k_start, shard.k_end),
                ws,
            ) {
                Ok(p) => p,
                Err(e) => return Outcome::Reply(response_err(&e)),
            };
            let done = state.work_done.fetch_add(1, Ordering::SeqCst) + 1;
            match state.config.fault {
                Some(Fault::CloseAfter { after }) if done > after => return Outcome::Drop,
                Some(Fault::HangAfter { after, stall }) if done > after => {
                    std::thread::sleep(stall);
                }
                _ => {}
            }
            if state.recorder.enabled() {
                state.recorder.add("cluster.worker.shards_computed", 1);
            }
            Outcome::Reply(response_ok(encode_partial(&shard, &partial.mp, &partial.ip), None))
        }
        ClusterRequest::DropJob { job } => {
            let dropped = state.jobs.lock().expect("jobs lock").remove(&job).is_some();
            Outcome::Reply(response_ok(Value::obj(vec![("dropped", Value::Bool(dropped))]), None))
        }
        ClusterRequest::Shutdown => Outcome::Reply(response_ok(Value::str("shutting down"), None)),
    }
}

fn write_line(writer: &mut TcpStream, response: Value) -> bool {
    let mut encoded = response.encode();
    encoded.push('\n');
    writer.write_all(encoded.as_bytes()).is_ok() && writer.flush().is_ok()
}

/// A worker running on a background thread of *this* process — the shape
/// the bench scaling scenario, the check oracle, and the tests use.
pub struct LocalWorker {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<ServeResult<()>>>,
}

impl LocalWorker {
    /// Binds an ephemeral-port worker and runs it on a new thread.
    pub fn spawn(config: WorkerConfig) -> ServeResult<LocalWorker> {
        let worker = Worker::bind("127.0.0.1:0", config, SharedRecorder::noop())?;
        let addr = worker.local_addr()?;
        let handle = std::thread::spawn(move || worker.run());
        Ok(LocalWorker { addr, handle: Some(handle) })
    }

    /// The worker's address, as a `host:port` string for the coordinator.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Sends `shutdown` and joins the worker thread.
    pub fn shutdown(mut self) {
        let _ = send_shutdown(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LocalWorker {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = send_shutdown(self.addr);
            let _ = handle.join();
        }
    }
}

fn send_shutdown(addr: SocketAddr) -> ServeResult<()> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(b"{\"cmd\":\"shutdown\"}\n")?;
    stream.flush()?;
    Ok(())
}

/// Spawns `count` in-process workers with the same config.
pub fn spawn_local_workers(count: usize, config: WorkerConfig) -> ServeResult<Vec<LocalWorker>> {
    (0..count).map(|_| LocalWorker::spawn(config.clone())).collect()
}
