//! # valmod-cluster
//!
//! Distributed variable-length motif discovery: a coordinator/worker
//! system that shards the ℓmin..ℓmax sweep of exact STOMP passes across a
//! pool of worker processes and merges the partial profiles **bit-
//! identically** to a single-node run.
//!
//! The subsystem rests on one algebraic fact, proven and property-tested
//! in `valmod-mp`: the lexicographic `(distance, index)` min that folds
//! partial matrix profiles is associative, commutative, and *idempotent*.
//! Shards may therefore execute in any order, on any worker, any number
//! of times — redispatching work from a dead or hung worker needs no
//! distributed bookkeeping, because duplicate partials merge to the same
//! bits.
//!
//! Layers:
//!
//! * [`plan`] — the partition plan: (length × cell-balanced diagonal
//!   range) shards, reusing [`valmod_mp::diagonal_chunks`];
//! * [`wire`] — the worker protocol, the same line-delimited exact-`f64`
//!   JSON framing as `valmod-serve` plus `load_job`/`work`/`drop_job`,
//!   with the shared versioned `hello` handshake;
//! * [`worker`] — the TCP worker ([`worker::Worker`],
//!   [`worker::LocalWorker`] for in-process pools) with injectable fault
//!   modes for the check oracle;
//! * [`coordinator`] — pool validation, dispatch with per-shard
//!   deadlines, retry-with-backoff, redispatch from dead workers;
//! * [`job`] — the job spec, the canonical output body (per-length FNV
//!   digests over exact profile bits), and [`job::run_local`], the
//!   byte-for-byte reference every distributed run is diffed against.
//!
//! ## Quick example (in-process workers)
//!
//! ```
//! use valmod_cluster::coordinator::{run_distributed, CoordinatorConfig};
//! use valmod_cluster::job::{run_local, JobSpec};
//! use valmod_cluster::worker::{spawn_local_workers, WorkerConfig};
//! use valmod_obs::SharedRecorder;
//!
//! let (values, _) = valmod_data::generators::plant_motif(400, 24, 2, 0.001, 7);
//! let spec = JobSpec::new("demo", values, 20, 26);
//! let workers = spawn_local_workers(2, WorkerConfig::default()).unwrap();
//! let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
//!
//! let cfg = CoordinatorConfig::default();
//! let run = run_distributed(&spec, &addrs, &cfg, &SharedRecorder::noop()).unwrap();
//! let local = run_local(&spec, addrs.len(), &SharedRecorder::noop()).unwrap();
//! assert!(run.output.bits_equal(&local));
//! for w in workers {
//!     w.shutdown();
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod job;
pub mod plan;
pub mod wire;
pub mod worker;

pub use coordinator::{run_distributed, CoordinatorConfig, DistributedRun, WorkerReport};
pub use job::{run_local, JobOutput, JobSpec};
pub use plan::{Plan, Shard};
pub use wire::ClusterRequest;
pub use worker::{spawn_local_workers, Fault, LocalWorker, Worker, WorkerConfig};
