//! The cluster wire protocol — the same line-delimited JSON framing as
//! `valmod-serve` (one request object per line, one response per line, the
//! exact-f64 [`Value`] encoding), with worker-specific commands:
//!
//! ```text
//! cmd      := "hello" | "ping" | "load_job" | "work" | "drop_job" | "shutdown"
//!
//! hello    := version, capabilities?: [str...]   (shared with valmod-serve)
//! load_job := job, values: [f64...], excl?: "num/den"
//! work     := job, l, k_start, k_end
//! drop_job := job
//!
//! work result := { "l", "k_start", "k_end", "mp": [num|null...], "ip": [num|null...] }
//! ```
//!
//! `mp` encodes `+∞` (no neighbour seen in this range) as `null` and finite
//! distances through the shortest-round-trip `f64` rendering, so a partial
//! profile survives the wire **bit-exactly**; `ip` encodes `usize::MAX` as
//! `null`. A `work` for a job the worker does not hold answers the stable
//! error kind `unknown_series` — the coordinator reacts by re-sending
//! `load_job` (this is how a restarted worker rejoins mid-job).

use valmod_mp::ExclusionPolicy;
use valmod_serve::{ServeError, ServeResult, Value};

use crate::plan::Shard;

/// Capabilities a cluster worker advertises in its `hello` response.
pub const WORKER_CAPABILITIES: &[&str] = &["cluster", "stomp-range"];

/// A parsed worker-bound request.
#[derive(Debug, Clone)]
pub enum ClusterRequest {
    /// Version/capability handshake (same shape as the serve protocol).
    Hello {
        /// Protocol version the peer speaks.
        version: u64,
        /// Capability strings the peer offers.
        capabilities: Vec<String>,
    },
    /// Liveness probe.
    Ping,
    /// Ship the series for a job; the worker caches its profiled form.
    LoadJob {
        /// Job identifier (scopes the cached series).
        job: String,
        /// The raw samples.
        values: Vec<f64>,
        /// Exclusion policy for every shard of this job.
        policy: ExclusionPolicy,
    },
    /// Compute the partial profile of one shard.
    Work {
        /// Job identifier.
        job: String,
        /// The shard to compute.
        shard: Shard,
    },
    /// Forget a job's cached series.
    DropJob {
        /// Job identifier.
        job: String,
    },
    /// Stop the worker process.
    Shutdown,
}

impl ClusterRequest {
    /// The stable wire name of this command.
    pub fn cmd_name(&self) -> &'static str {
        match self {
            ClusterRequest::Hello { .. } => "hello",
            ClusterRequest::Ping => "ping",
            ClusterRequest::LoadJob { .. } => "load_job",
            ClusterRequest::Work { .. } => "work",
            ClusterRequest::DropJob { .. } => "drop_job",
            ClusterRequest::Shutdown => "shutdown",
        }
    }

    /// Parses one request tree, rejecting unknown commands and fields.
    pub fn from_value(v: &Value) -> ServeResult<ClusterRequest> {
        let fields = match v {
            Value::Obj(fields) => fields,
            _ => return Err(ServeError::Protocol("request must be an object".into())),
        };
        let cmd = require_str(v, "cmd")?;
        let known: &[&str] = match cmd {
            "hello" => &["cmd", "version", "capabilities"],
            "ping" | "shutdown" => &["cmd"],
            "load_job" => &["cmd", "job", "values", "excl"],
            "work" => &["cmd", "job", "l", "k_start", "k_end"],
            "drop_job" => &["cmd", "job"],
            other => return Err(ServeError::Protocol(format!("unknown command {other:?}"))),
        };
        for (k, _) in fields {
            if !known.contains(&k.as_str()) {
                return Err(ServeError::Protocol(format!("unknown field {k:?} for {cmd:?}")));
            }
        }
        match cmd {
            "hello" => Ok(ClusterRequest::Hello {
                version: v
                    .get("version")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad_field("version", "a non-negative integer"))?,
                capabilities: match v.get("capabilities") {
                    None => Vec::new(),
                    Some(c) => c
                        .as_arr()
                        .and_then(|a| a.iter().map(|x| x.as_str().map(str::to_string)).collect())
                        .ok_or_else(|| bad_field("capabilities", "an array of strings"))?,
                },
            }),
            "ping" => Ok(ClusterRequest::Ping),
            "load_job" => Ok(ClusterRequest::LoadJob {
                job: require_str(v, "job")?.to_string(),
                values: {
                    let arr = v
                        .get("values")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| bad_field("values", "an array"))?;
                    arr.iter()
                        .map(|x| x.as_f64().filter(|f| f.is_finite()))
                        .collect::<Option<Vec<f64>>>()
                        .ok_or_else(|| bad_field("values", "an array of finite numbers"))?
                },
                policy: match v.get("excl") {
                    None => ExclusionPolicy::HALF,
                    Some(e) => parse_policy(
                        e.as_str().ok_or_else(|| bad_field("excl", "a \"num/den\" string"))?,
                    )?,
                },
            }),
            "work" => Ok(ClusterRequest::Work {
                job: require_str(v, "job")?.to_string(),
                shard: Shard {
                    l: require_usize(v, "l")?,
                    k_start: require_usize(v, "k_start")?,
                    k_end: require_usize(v, "k_end")?,
                },
            }),
            "drop_job" => Ok(ClusterRequest::DropJob { job: require_str(v, "job")?.to_string() }),
            "shutdown" => Ok(ClusterRequest::Shutdown),
            _ => unreachable!("cmd already validated"),
        }
    }

    /// Encodes this request as a wire tree (the coordinator side).
    pub fn to_value(&self) -> Value {
        match self {
            ClusterRequest::Hello { version, capabilities } => Value::obj(vec![
                ("cmd", Value::str("hello")),
                ("version", (*version).into()),
                ("capabilities", Value::Arr(capabilities.iter().map(Value::str).collect())),
            ]),
            ClusterRequest::Ping => Value::obj(vec![("cmd", Value::str("ping"))]),
            ClusterRequest::LoadJob { job, values, policy } => {
                let mut fields = vec![
                    ("cmd", Value::str("load_job")),
                    ("job", Value::str(job)),
                    ("values", Value::Arr(values.iter().map(|&x| Value::Num(x)).collect())),
                ];
                let pol = policy.reduced();
                if pol != ExclusionPolicy::HALF {
                    fields.push(("excl", Value::str(format!("{}/{}", pol.num(), pol.den()))));
                }
                Value::obj(fields)
            }
            ClusterRequest::Work { job, shard } => Value::obj(vec![
                ("cmd", Value::str("work")),
                ("job", Value::str(job)),
                ("l", shard.l.into()),
                ("k_start", shard.k_start.into()),
                ("k_end", shard.k_end.into()),
            ]),
            ClusterRequest::DropJob { job } => {
                Value::obj(vec![("cmd", Value::str("drop_job")), ("job", Value::str(job))])
            }
            ClusterRequest::Shutdown => Value::obj(vec![("cmd", Value::str("shutdown"))]),
        }
    }
}

/// Encodes one computed partial profile as a `work` result payload.
/// `+∞`/`usize::MAX` slots (never touched by this shard's range) become
/// `null`; finite distances round-trip bit-exactly through the shortest
/// `f64` rendering.
pub fn encode_partial(shard: &Shard, mp: &[f64], ip: &[usize]) -> Value {
    Value::obj(vec![
        ("l", shard.l.into()),
        ("k_start", shard.k_start.into()),
        ("k_end", shard.k_end.into()),
        (
            "mp",
            Value::Arr(
                mp.iter()
                    .map(|&d| if d.is_finite() { Value::Num(d) } else { Value::Null })
                    .collect(),
            ),
        ),
        (
            "ip",
            Value::Arr(
                ip.iter()
                    .map(|&j| if j == usize::MAX { Value::Null } else { Value::from(j) })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a `work` result payload back into `(shard, mp, ip)`.
pub fn decode_partial(v: &Value) -> ServeResult<(Shard, Vec<f64>, Vec<usize>)> {
    let shard = Shard {
        l: require_usize(v, "l")?,
        k_start: require_usize(v, "k_start")?,
        k_end: require_usize(v, "k_end")?,
    };
    let mp_arr = v.get("mp").and_then(Value::as_arr).ok_or_else(|| bad_field("mp", "an array"))?;
    let ip_arr = v.get("ip").and_then(Value::as_arr).ok_or_else(|| bad_field("ip", "an array"))?;
    if mp_arr.len() != ip_arr.len() {
        return Err(ServeError::Protocol("partial mp/ip length mismatch".into()));
    }
    let mp = mp_arr
        .iter()
        .map(|x| match x {
            Value::Null => Some(f64::INFINITY),
            other => other.as_f64().filter(|f| f.is_finite()),
        })
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| bad_field("mp", "numbers or nulls"))?;
    let ip = ip_arr
        .iter()
        .map(|x| match x {
            Value::Null => Some(usize::MAX),
            other => other.as_usize(),
        })
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| bad_field("ip", "non-negative integers or nulls"))?;
    Ok((shard, mp, ip))
}

fn bad_field(key: &str, expected: &str) -> ServeError {
    ServeError::Protocol(format!("field {key:?} must be {expected}"))
}

fn require_str<'a>(v: &'a Value, key: &str) -> ServeResult<&'a str> {
    v.get(key).and_then(Value::as_str).ok_or_else(|| bad_field(key, "a string"))
}

fn require_usize(v: &Value, key: &str) -> ServeResult<usize> {
    v.get(key).and_then(Value::as_usize).ok_or_else(|| bad_field(key, "a non-negative integer"))
}

fn parse_policy(s: &str) -> ServeResult<ExclusionPolicy> {
    let (num, den) = s
        .split_once('/')
        .and_then(|(n, d)| Some((n.trim().parse().ok()?, d.trim().parse().ok()?)))
        .filter(|&(_, d): &(usize, usize)| d > 0)
        .ok_or_else(|| bad_field("excl", "\"num/den\" with den > 0"))?;
    Ok(ExclusionPolicy::new(num, den))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_to_value() {
        let reqs = vec![
            ClusterRequest::Hello { version: 1, capabilities: vec!["cluster".into()] },
            ClusterRequest::Ping,
            ClusterRequest::LoadJob {
                job: "j1".into(),
                values: vec![1.0, -2.5, 0.125],
                policy: ExclusionPolicy::QUARTER,
            },
            ClusterRequest::Work {
                job: "j1".into(),
                shard: Shard { l: 16, k_start: 8, k_end: 40 },
            },
            ClusterRequest::DropJob { job: "j1".into() },
            ClusterRequest::Shutdown,
        ];
        for req in reqs {
            let encoded = req.to_value().encode();
            let rereq = ClusterRequest::from_value(&Value::parse(&encoded).unwrap()).unwrap();
            assert_eq!(format!("{req:?}"), format!("{rereq:?}"), "roundtrip of {encoded}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            r#"[1]"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"work","job":"j"}"#,
            r#"{"cmd":"work","job":"j","l":8,"k_start":0,"k_end":4,"typo":1}"#,
            r#"{"cmd":"load_job","job":"j","values":[1,"x"]}"#,
            r#"{"cmd":"load_job","job":"j","values":[1],"excl":"1/0"}"#,
            r#"{"cmd":"hello"}"#,
        ] {
            let parsed = Value::parse(bad).unwrap();
            assert!(ClusterRequest::from_value(&parsed).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn partials_roundtrip_bit_exactly_with_nulls() {
        let shard = Shard { l: 12, k_start: 6, k_end: 20 };
        let mp = vec![0.1 + 0.2, f64::INFINITY, 1.0 / 3.0, 2.0_f64.sqrt()];
        let ip = vec![3, usize::MAX, 0, 2];
        let encoded = encode_partial(&shard, &mp, &ip).encode();
        let (reshard, remp, reip) = decode_partial(&Value::parse(&encoded).unwrap()).unwrap();
        assert_eq!(reshard, shard);
        assert_eq!(reip, ip);
        for (a, b) in mp.iter().zip(&remp) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire must preserve every bit");
        }
    }
}
