//! Adversarial series generators.
//!
//! Every case is a deterministic function of `(seed, id)`, so a failure
//! report ("case 17 of seed 42") is reproducible forever — no corpus files,
//! no global state. The families target the numeric edges where motif code
//! historically breaks: zero variance, near-zero variance under the flatness
//! threshold, isolated spikes, extreme amplitudes/offsets, and series barely
//! longer than the largest query length.

use valmod_data::generators::{plant_motif, random_walk, sine_mixture};
use valmod_data::rng::Xoshiro256;

/// The adversarial family a case is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Every sample identical: all subsequences are flat, every distance
    /// profile is degenerate.
    Constant,
    /// A constant floor with one huge isolated spike: most windows are flat,
    /// the few covering the spike have enormous σ ratios.
    SingleSpike,
    /// Constant plus noise at the 1e-9 scale — straddling the flatness
    /// threshold, where z-normalisation amplifies pure rounding noise.
    NearConstant,
    /// A random walk scaled to ±1e9 on a 1e9 DC offset: exercises
    /// catastrophic cancellation in rolling statistics.
    ExtremeAmplitude,
    /// A plain random walk — the unstructured control.
    RandomWalk,
    /// A series with a planted variable-length motif, so oracles compare on
    /// data with real structure.
    PlantedMotif,
    /// `n` barely above `l_max`: one to four subsequences per length, most
    /// pairs trivially excluded.
    TightFit,
    /// A sine mixture with noise — smooth, periodic, highly self-similar.
    Periodic,
}

const FAMILIES: [Family; 8] = [
    Family::Constant,
    Family::SingleSpike,
    Family::NearConstant,
    Family::ExtremeAmplitude,
    Family::RandomWalk,
    Family::PlantedMotif,
    Family::TightFit,
    Family::Periodic,
];

/// One generated differential-test case: a series plus a query range.
#[derive(Debug, Clone)]
pub struct Case {
    /// Index within the run (`generate_case(seed, id)` reproduces it).
    pub id: u64,
    /// The adversarial family it was drawn from.
    pub family: Family,
    /// The series samples (always finite by construction).
    pub values: Vec<f64>,
    /// Smallest query length.
    pub l_min: usize,
    /// Largest query length (`values.len() >= l_max + 1` always holds).
    pub l_max: usize,
    /// Partial-profile capacity `p`.
    pub p: usize,
}

impl Case {
    /// A one-line human summary for failure reports.
    pub fn label(&self) -> String {
        format!(
            "case {} [{:?}] n={} l={}..{} p={}",
            self.id,
            self.family,
            self.values.len(),
            self.l_min,
            self.l_max,
            self.p
        )
    }
}

/// Derives the case-local RNG. Mixing the id through a splitmix-style odd
/// constant decorrelates consecutive cases sharing one run seed.
fn case_rng(seed: u64, id: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generates the `id`-th case of a run, deterministically from `(seed, id)`.
pub fn generate_case(seed: u64, id: u64) -> Case {
    let mut rng = case_rng(seed, id);
    let family = FAMILIES[(id as usize) % FAMILIES.len()];
    let case_seed = rng.next_u64();

    let l_min = rng.uniform_usize(4, 12);
    let l_max = l_min + rng.uniform_usize(2, 10);
    let p = rng.uniform_usize(1, 6);
    let n = (l_max + 2).max(rng.uniform_usize(60, 300));

    let values = match family {
        Family::Constant => vec![rng.uniform(-1e6, 1e6); n],
        Family::SingleSpike => {
            let floor = rng.uniform(-10.0, 10.0);
            let mut v = vec![floor; n];
            let at = rng.uniform_usize(0, n - 1);
            v[at] = floor + rng.uniform(1e6, 1e9);
            v
        }
        Family::NearConstant => {
            let base = rng.uniform(-100.0, 100.0);
            (0..n).map(|_| base + rng.uniform(-1e-9, 1e-9)).collect()
        }
        Family::ExtremeAmplitude => {
            random_walk(n, case_seed).iter().map(|x| 1e9 + x * 1e9).collect()
        }
        Family::RandomWalk => random_walk(n, case_seed),
        Family::PlantedMotif => {
            // Pick a motif length inside the query range and a series long
            // enough to satisfy plant_motif's packing precondition.
            let motif_len = rng.uniform_usize(l_min, l_max);
            let instances = rng.uniform_usize(2, 3);
            let n = n.max(instances * 2 * motif_len + 8);
            plant_motif(n, motif_len.max(2), instances, 0.01, case_seed).0
        }
        Family::TightFit => {
            let n = l_max + 1 + rng.uniform_usize(0, 3);
            random_walk(n, case_seed)
        }
        Family::Periodic => {
            let freq = rng.uniform(0.01, 0.08);
            sine_mixture(n, &[(freq, 1.0), (freq * 3.1, 0.4)], 0.02, case_seed)
        }
    };
    debug_assert!(values.len() > l_max);
    Case { id, family, values, l_min, l_max, p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for id in 0..24 {
            let a = generate_case(42, id);
            let b = generate_case(42, id);
            assert_eq!(a.values, b.values, "case {id}");
            assert_eq!((a.l_min, a.l_max, a.p), (b.l_min, b.l_max, b.p));
        }
    }

    #[test]
    fn seeds_change_the_cases() {
        let a = generate_case(1, 4);
        let b = generate_case(2, 4);
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn every_case_is_finite_and_viable() {
        for id in 0..64 {
            let c = generate_case(7, id);
            assert!(c.values.iter().all(|v| v.is_finite()), "{}", c.label());
            assert!(c.values.len() > c.l_max, "{}", c.label());
            assert!(c.l_min >= 4 && c.l_min <= c.l_max, "{}", c.label());
            assert!(c.p >= 1, "{}", c.label());
        }
    }

    #[test]
    fn all_families_appear_in_one_lap() {
        let seen: Vec<Family> = (0..8).map(|id| generate_case(3, id).family).collect();
        for f in FAMILIES {
            assert!(seen.contains(&f), "{f:?} missing");
        }
    }
}
