//! The crash-recovery oracle: kill-point fault injection for the durable
//! serve store.
//!
//! One reference ingestion (a LOAD plus several APPEND batches of varying
//! sizes) is run against a durable [`SeriesStore`] to produce a data
//! directory whose WAL holds every append. Each scenario then copies that
//! directory, simulates a crash at a chosen kill point — before the last
//! WAL record, mid-write (torn header / payload / checksum), after a bit
//! flip, or not at all — and reopens the copy, asserting that:
//!
//! * recovery never panics and never reports an error for a torn tail;
//! * the recovered samples are **bit-identical** to replaying the
//!   surviving prefix of batches (a fully-synced APPEND is never lost,
//!   a half-written one is cleanly dropped);
//! * the version counter and hot lengths match the reference;
//! * a post-recovery `MOTIFS` answer is byte-identical to a cold engine
//!   replaying the same ingestion history (the stats frame is pinned at
//!   LOAD time, so the replay — not a one-shot LOAD — is the oracle).
//!
//! Everything derives from the run's seed, so `valmod check --seed 42`
//! reproduces the same matrix bit-for-bit.

use std::path::{Path, PathBuf};

use valmod_data::generators::random_walk;
use valmod_mp::ExclusionPolicy;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::persist::wal_record_spans;
use valmod_serve::{SeriesStore, SharedRecorder, Value};

/// Append-batch sizes of the reference ingestion: deliberately irregular
/// (shorter than the hot window, a single sample, longer batches) so WAL
/// records have different lengths and kill points land mid-structure.
const BATCH_SIZES: [usize; 4] = [7, 32, 1, 40];

/// Samples loaded before any append.
const BASE_LEN: usize = 256;

/// The hot length kept live through the ingestion.
const HOT_LENGTH: usize = 16;

/// Outcome of the recovery matrix.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Scenario names that ran clean.
    pub passed: Vec<String>,
    /// `(scenario, what went wrong)` for the rest.
    pub failed: Vec<(String, String)>,
}

impl RecoveryReport {
    /// True when every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push((name.to_string(), why)),
        }
    }
}

/// How a scenario mutates the reference WAL before reopening.
enum KillPoint {
    /// No crash: every batch was fully synced and must survive.
    None,
    /// Crash before record `i` was written at all.
    BeforeRecord(usize),
    /// Crash mid-write: record `i` truncated `bytes_into` bytes in.
    TornRecord { index: usize, bytes_into: usize },
    /// Record `i` fully written but a byte at `offset_in_record` flipped.
    BitFlip { index: usize, offset_in_record: usize },
}

impl KillPoint {
    /// Number of reference batches that must survive recovery.
    fn surviving_batches(&self) -> usize {
        match self {
            KillPoint::None => BATCH_SIZES.len(),
            KillPoint::BeforeRecord(i)
            | KillPoint::TornRecord { index: i, .. }
            | KillPoint::BitFlip { index: i, .. } => *i,
        }
    }

    fn apply(&self, wal_path: &Path) -> Result<(), String> {
        let bytes = std::fs::read(wal_path).map_err(|e| format!("read WAL: {e}"))?;
        let spans = wal_record_spans(&bytes);
        if spans.len() != BATCH_SIZES.len() {
            return Err(format!(
                "reference WAL has {} records, expected {}",
                spans.len(),
                BATCH_SIZES.len()
            ));
        }
        let mutated = match *self {
            KillPoint::None => return Ok(()),
            KillPoint::BeforeRecord(i) => bytes[..spans[i].0].to_vec(),
            KillPoint::TornRecord { index, bytes_into } => {
                let (start, end) = spans[index];
                bytes[..start.saturating_add(bytes_into).min(end - 1)].to_vec()
            }
            KillPoint::BitFlip { index, offset_in_record } => {
                let (start, end) = spans[index];
                let mut out = bytes;
                out[start.saturating_add(offset_in_record).min(end - 1)] ^= 0x40;
                out
            }
        };
        std::fs::write(wal_path, mutated).map_err(|e| format!("write WAL: {e}"))
    }
}

/// Runs the full kill-point matrix. Deterministic in `seed`.
pub fn run_recovery_matrix(seed: u64) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let root =
        std::env::temp_dir().join(format!("valmod_check_recovery_{}_{}", std::process::id(), seed));
    let _ = std::fs::remove_dir_all(&root);

    let samples = random_walk(BASE_LEN + BATCH_SIZES.iter().sum::<usize>(), seed);
    let base_dir = root.join("base");
    if let Err(why) = build_reference_dir(&base_dir, &samples) {
        report.record("build-reference", Err(why));
        return report;
    }
    report.record("build-reference", Ok(()));

    // spans/offsets are resolved per scenario from the copied WAL; the
    // kill points below are phrased in record coordinates. The torn
    // offsets land in the magic (2), the header (9), and the payload (20)
    // of the final record; the flips hit its payload and checksum.
    let last = BATCH_SIZES.len() - 1;
    let scenarios: Vec<(&str, KillPoint)> = vec![
        ("clean-restart", KillPoint::None),
        ("crash-before-last-record", KillPoint::BeforeRecord(last)),
        ("crash-before-any-record", KillPoint::BeforeRecord(0)),
        ("torn-magic", KillPoint::TornRecord { index: last, bytes_into: 2 }),
        ("torn-header", KillPoint::TornRecord { index: last, bytes_into: 9 }),
        ("torn-payload", KillPoint::TornRecord { index: last, bytes_into: 20 }),
        ("torn-checksum", KillPoint::TornRecord { index: last, bytes_into: usize::MAX }),
        ("bitflip-payload", KillPoint::BitFlip { index: last, offset_in_record: 20 }),
        ("bitflip-checksum", KillPoint::BitFlip { index: last, offset_in_record: usize::MAX }),
        ("bitflip-first-record", KillPoint::BitFlip { index: 0, offset_in_record: 6 }),
    ];
    for (name, kill) in scenarios {
        let dir = root.join(name);
        report.record(name, run_scenario(&base_dir, &dir, &kill, &samples));
    }

    // Double recovery: recovering a truncated directory twice must agree
    // with itself (the truncation is physical, not re-derived each open).
    report.record("recover-twice-is-stable", recover_twice(&base_dir, &root, &samples));

    let _ = std::fs::remove_dir_all(&root);
    report
}

/// Ingests the reference workload into `dir`: LOAD of the base prefix with
/// one hot length, then the `BATCH_SIZES` appends, all WAL-logged.
fn build_reference_dir(dir: &Path, samples: &[f64]) -> Result<(), String> {
    let noop = SharedRecorder::noop();
    let store = SeriesStore::open(dir, u64::MAX, &noop)
        .map_err(|e| format!("open reference store: {e}"))?;
    store
        .load("s", samples[..BASE_LEN].to_vec(), &[HOT_LENGTH], ExclusionPolicy::HALF, false, &noop)
        .map_err(|e| format!("reference load: {e}"))?;
    let mut offset = BASE_LEN;
    for size in BATCH_SIZES {
        store
            .append("s", &samples[offset..offset + size], &noop)
            .map_err(|e| format!("reference append at {offset}: {e}"))?;
        offset += size;
    }
    Ok(())
}

/// Copies the reference dir, applies the kill point, reopens, and checks
/// the recovered store against replaying the surviving prefix.
fn run_scenario(base: &Path, dir: &Path, kill: &KillPoint, samples: &[f64]) -> Result<(), String> {
    copy_dir(base, dir)?;
    let wal = find_one(dir, "wal")?;
    kill.apply(&wal)?;

    let noop = SharedRecorder::noop();
    let store =
        SeriesStore::open(dir, u64::MAX, &noop).map_err(|e| format!("recovery errored: {e}"))?;
    if !store.recovery_skipped().is_empty() {
        return Err(format!("recovery skipped files: {:?}", store.recovery_skipped()));
    }
    let slot = store.get("s").map_err(|e| format!("series missing after recovery: {e}"))?;
    let recovered = slot.read();

    let surviving = kill.surviving_batches();
    let expected_len = BASE_LEN + BATCH_SIZES[..surviving].iter().sum::<usize>();
    let expected_version = 1 + surviving as u64;
    if recovered.len() != expected_len {
        return Err(format!(
            "recovered {} samples, expected {expected_len} ({surviving} surviving batches)",
            recovered.len()
        ));
    }
    if recovered.version() != expected_version {
        return Err(format!(
            "recovered version {}, expected {expected_version}",
            recovered.version()
        ));
    }
    if recovered.hot_lengths() != vec![HOT_LENGTH] {
        return Err(format!("hot lengths {:?}, expected [{HOT_LENGTH}]", recovered.hot_lengths()));
    }
    for (i, (a, b)) in recovered.values().iter().zip(&samples[..expected_len]).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!("sample {i} differs after recovery: {a} vs {b}"));
        }
    }
    drop(recovered);
    drop(store);

    // A fully-synced final batch (clean restart) and the deepest
    // truncation both answer queries exactly like a cold engine over the
    // reference prefix.
    motifs_match_cold(dir, &samples[..expected_len])
}

/// Asserts a durable engine over `dir` answers a variable-length MOTIFS
/// query byte-identically to an in-memory engine that replays the same
/// ingestion history (LOAD of the base prefix, then the surviving APPEND
/// batches). The history matters: a series' stats frame is pinned at LOAD
/// time, so a one-shot LOAD of the full samples would sit in a different
/// frame than the recovered store and could differ in the last float bit.
/// The length range straddles the hot length but is not fixed, so both
/// sides cold-compute from their samples.
fn motifs_match_cold(dir: &Path, reference: &[f64]) -> Result<(), String> {
    let spec = QuerySpec {
        series: "s".into(),
        kind: QueryKind::Motifs { top: 3 },
        l_min: HOT_LENGTH,
        l_max: HOT_LENGTH + 8,
        p: 8,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    };
    let recovered_body = {
        let config = EngineConfig::builder()
            .workers(1)
            .data_dir(dir)
            .build()
            .map_err(|e| format!("engine config: {e}"))?;
        let engine = QueryEngine::open(config).map_err(|e| format!("open durable engine: {e}"))?;
        let out = engine.query(spec.clone()).map_err(|e| format!("post-recovery query: {e}"))?;
        let body = body_of(&out.payload)?;
        engine.shutdown();
        engine.join();
        body
    };
    let cold_body = {
        let engine = QueryEngine::new(
            EngineConfig::builder().workers(1).build().expect("static engine config"),
        );
        let base = reference.len().min(BASE_LEN);
        engine
            .load("s", reference[..base].to_vec(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("cold load: {e}"))?;
        let mut offset = base;
        for size in BATCH_SIZES {
            if offset >= reference.len() {
                break;
            }
            let end = (offset + size).min(reference.len());
            engine
                .append("s", &reference[offset..end])
                .map_err(|e| format!("cold replay append at {offset}: {e}"))?;
            offset = end;
        }
        let out = engine.query(spec).map_err(|e| format!("cold query: {e}"))?;
        let body = body_of(&out.payload)?;
        engine.shutdown();
        engine.join();
        body
    };
    if recovered_body != cold_body {
        return Err(format!(
            "post-recovery MOTIFS diverges from cold batch: {recovered_body} vs {cold_body}"
        ));
    }
    Ok(())
}

fn body_of(payload: &Value) -> Result<String, String> {
    payload
        .get("body")
        .map(Value::encode)
        .ok_or_else(|| "query payload missing \"body\"".to_string())
}

/// A torn directory recovered twice must yield the same store both times,
/// proving truncation is physical (idempotent) rather than re-decided.
fn recover_twice(base: &Path, root: &Path, samples: &[f64]) -> Result<(), String> {
    let dir = root.join("recover-twice");
    copy_dir(base, &dir)?;
    let wal = find_one(&dir, "wal")?;
    KillPoint::TornRecord { index: BATCH_SIZES.len() - 1, bytes_into: 20 }.apply(&wal)?;

    let noop = SharedRecorder::noop();
    let first = {
        let store =
            SeriesStore::open(&dir, u64::MAX, &noop).map_err(|e| format!("first open: {e}"))?;
        store.get("s").map_err(|e| e.to_string())?.read().values().to_vec()
    };
    let wal_after_first = std::fs::metadata(&wal).map_err(|e| format!("stat WAL: {e}"))?.len();
    let second = {
        let store =
            SeriesStore::open(&dir, u64::MAX, &noop).map_err(|e| format!("second open: {e}"))?;
        store.get("s").map_err(|e| e.to_string())?.read().values().to_vec()
    };
    let wal_after_second = std::fs::metadata(&wal).map_err(|e| format!("stat WAL: {e}"))?.len();
    if first.len() != second.len()
        || first.iter().zip(&second).any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err("second recovery disagrees with the first".into());
    }
    if wal_after_first != wal_after_second {
        return Err(format!(
            "WAL length changed between recoveries: {wal_after_first} then {wal_after_second}"
        ));
    }
    let expected_len = BASE_LEN + BATCH_SIZES[..BATCH_SIZES.len() - 1].iter().sum::<usize>();
    if first.len() != expected_len {
        return Err(format!("recovered {} samples, expected {expected_len}", first.len()));
    }
    if first.iter().zip(&samples[..expected_len]).any(|(a, b)| a.to_bits() != b.to_bits()) {
        return Err("recovered samples differ from the reference prefix".into());
    }
    Ok(())
}

fn copy_dir(from: &Path, to: &Path) -> Result<(), String> {
    std::fs::create_dir_all(to).map_err(|e| format!("create {}: {e}", to.display()))?;
    for entry in std::fs::read_dir(from).map_err(|e| format!("read {}: {e}", from.display()))? {
        let entry = entry.map_err(|e| format!("read dir entry: {e}"))?;
        std::fs::copy(entry.path(), to.join(entry.file_name()))
            .map_err(|e| format!("copy {}: {e}", entry.path().display()))?;
    }
    Ok(())
}

fn find_one(dir: &Path, ext: &str) -> Result<PathBuf, String> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let path = entry.map_err(|e| format!("read dir entry: {e}"))?.path();
        if path.extension().is_some_and(|e| e == ext) {
            found.push(path);
        }
    }
    match found.len() {
        1 => Ok(found.remove(0)),
        n => Err(format!("expected exactly one .{ext} file in {}, found {n}", dir.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_is_clean_on_seed_42() {
        let report = run_recovery_matrix(42);
        assert!(report.all_passed(), "failures: {:?}", report.failed);
        // Every named scenario ran.
        assert!(report.passed.len() >= 11, "ran: {:?}", report.passed);
    }

    #[test]
    fn the_matrix_is_deterministic() {
        let a = run_recovery_matrix(7);
        let b = run_recovery_matrix(7);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.failed, b.failed);
    }
}
