//! The distributed-discovery oracle: every scenario runs a real
//! coordinator against real loopback workers and diffs the merged output
//! against [`valmod_cluster::run_local`] — the same partition plan
//! executed in process — demanding **bit identity** (`to_bits` on every
//! profile slot, plus a byte-for-byte canonical body).
//!
//! The matrix covers partition shapes (shards per length × worker
//! counts), a worker SIGKILLed mid-shard (connection dropped without a
//! reply), a straggler hanging past the per-shard deadline, and a
//! version-incompatible worker — the job must complete through
//! redispatch, bit-identically, as long as one healthy worker lives.

use std::time::Duration;

use valmod_cluster::{
    run_distributed, run_local, CoordinatorConfig, Fault, JobSpec, LocalWorker, WorkerConfig,
};
use valmod_obs::{Registry, SharedRecorder};
use valmod_serve::Timeouts;

/// Outcome of the distributed-vs-local matrix.
#[derive(Debug, Default)]
pub struct ClusterReport {
    /// Scenario names that ran clean.
    pub passed: Vec<String>,
    /// `(scenario, what went wrong)` for the rest.
    pub failed: Vec<(String, String)>,
}

impl ClusterReport {
    /// True when every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push((name.to_string(), why)),
        }
    }
}

fn job(seed: u64) -> JobSpec {
    let (values, _) = valmod_data::generators::plant_motif(360, 22, 2, 0.001, seed);
    JobSpec::new(format!("check-{seed}"), values, 16, 22)
}

fn config(parts: usize, shard_timeout: Duration) -> CoordinatorConfig {
    CoordinatorConfig {
        parts_per_length: parts,
        shard_timeout,
        connect: Timeouts::new().with_connect(Duration::from_secs(2)).with_retries(1),
        ..CoordinatorConfig::default()
    }
}

/// Runs a distributed job against `workers` and demands bit identity with
/// the local reference.
fn diff_distributed(
    spec: &JobSpec,
    workers: &[LocalWorker],
    cfg: &CoordinatorConfig,
    recorder: &SharedRecorder,
) -> Result<(), String> {
    let reference = run_local(spec, 1, &SharedRecorder::noop())
        .map_err(|e| format!("local reference failed: {e}"))?;
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let run = run_distributed(spec, &addrs, cfg, recorder)
        .map_err(|e| format!("distributed run failed: {e}"))?;
    if !run.output.bits_equal(&reference) {
        return Err("distributed output diverges from the local run at the bit level".into());
    }
    if run.output.body().encode() != reference.body().encode() {
        return Err("distributed body is not byte-identical to the local body".into());
    }
    Ok(())
}

/// Runs the full scenario matrix with the given master seed.
pub fn run_cluster_matrix(seed: u64) -> ClusterReport {
    let mut report = ClusterReport::default();

    // Partition-shape sweep: shards per length × worker counts. Every
    // combination must merge to the same bits as the unsharded local run.
    for (i, (worker_count, parts)) in [(1usize, 1usize), (2, 3), (3, 7)].into_iter().enumerate() {
        let name = format!("shape_w{worker_count}_p{parts}");
        let result = (|| {
            let spec = job(seed.wrapping_add(i as u64));
            let workers = spawn(worker_count, WorkerConfig::default())?;
            diff_distributed(
                &spec,
                &workers,
                &config(parts, Duration::from_secs(20)),
                &SharedRecorder::noop(),
            )?;
            shutdown(workers);
            Ok(())
        })();
        report.record(&name, result);
    }

    // A worker that dies mid-shard (drops the connection without replying,
    // the wire-level shape of SIGKILL): the job must complete through
    // redispatch and stay bit-identical.
    report.record("kill_mid_shard", {
        (|| {
            let spec = job(seed.wrapping_add(100));
            let killer = LocalWorker::spawn(WorkerConfig {
                fault: Some(Fault::CloseAfter { after: 1 }),
                ..WorkerConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let healthy = LocalWorker::spawn(WorkerConfig::default()).map_err(|e| e.to_string())?;
            let registry = Registry::new();
            diff_distributed(
                &spec,
                &[killer, healthy],
                &config(4, Duration::from_secs(20)),
                &SharedRecorder::from(registry.clone()),
            )?;
            if registry.snapshot().counter("cluster.shards.redispatched").unwrap_or(0) == 0 {
                return Err("job completed but nothing was redispatched".into());
            }
            Ok(())
        })()
    });

    // A straggler that hangs past the per-shard deadline: the timeout must
    // fire, the worker must be declared dead, and survivors finish the job.
    report.record("hang_past_deadline", {
        (|| {
            let spec = job(seed.wrapping_add(200));
            let straggler = LocalWorker::spawn(WorkerConfig {
                fault: Some(Fault::HangAfter { after: 1, stall: Duration::from_secs(2) }),
                ..WorkerConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let healthy = LocalWorker::spawn(WorkerConfig::default()).map_err(|e| e.to_string())?;
            diff_distributed(
                &spec,
                &[straggler, healthy],
                &config(3, Duration::from_millis(300)),
                &SharedRecorder::noop(),
            )
        })()
    });

    // A version-incompatible worker must be excluded at the handshake
    // without poisoning the job.
    report.record("version_mismatch_excluded", {
        (|| {
            let spec = job(seed.wrapping_add(300));
            let stale = LocalWorker::spawn(WorkerConfig {
                advertise_version: Some(u64::MAX),
                ..WorkerConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let healthy = LocalWorker::spawn(WorkerConfig::default()).map_err(|e| e.to_string())?;
            diff_distributed(
                &spec,
                &[stale, healthy],
                &config(2, Duration::from_secs(20)),
                &SharedRecorder::noop(),
            )
        })()
    });

    report
}

fn spawn(count: usize, config: WorkerConfig) -> Result<Vec<LocalWorker>, String> {
    valmod_cluster::spawn_local_workers(count, config).map_err(|e| e.to_string())
}

fn shutdown(workers: Vec<LocalWorker>) {
    for w in workers {
        w.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_matrix_runs_clean() {
        let report = run_cluster_matrix(42);
        assert!(report.all_passed(), "failures: {:?}", report.failed);
        assert!(report.passed.len() >= 6, "ran: {:?}", report.passed);
    }
}
