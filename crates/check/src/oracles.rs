//! Differential oracles: independent implementations answering the same
//! question must agree.
//!
//! Most comparisons are tolerance-based: the row-chunked harvest kernels
//! legitimately differ from sequential ones by sub-1e-12 rounding at chunk
//! seams, and tie-breaks between equal-distance pairs may pick different
//! indices. A divergence is only reported when *distances* disagree beyond
//! tolerance or when one side finds a motif the other says does not exist.
//!
//! The exception is [`check_diagonal_vs_row`]: the diagonal-blocked STOMP
//! kernel *guarantees* bit-identity with the row streamer (see
//! `valmod_mp::diagonal`), so that oracle compares `mp` bit patterns and
//! `ip` indices exactly, across several block widths and a parallel run.

use valmod_baselines::stomp_range;
use valmod_core::lb::lb_scale;
use valmod_core::{compute_matrix_profile, Valmod, ValmodConfig};
use valmod_data::rng::Xoshiro256;
use valmod_mp::diagonal::{stomp_diagonal_parallel_ws, stomp_diagonal_ws};
use valmod_mp::distance::zdist_naive;
use valmod_mp::matrix_profile::MatrixProfile;
use valmod_mp::parallel::stomp_parallel;
use valmod_mp::stomp::{stomp, stomp_row};
use valmod_mp::workspace::Workspace;
use valmod_mp::{ExclusionPolicy, ProfiledSeries, StreamingProfile};
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::Value;

use crate::generators::Case;

/// Absolute+relative tolerance for distance agreement between two exact
/// algorithms (covers chunk-seam and accumulation-order rounding).
const DIST_TOL: f64 = 1e-6;

/// One disagreement between an implementation and its oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The id of the generated case that exposed it.
    pub case_id: u64,
    /// Which oracle pair disagreed.
    pub oracle: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// The outcome of running every oracle over one case.
#[derive(Debug, Default)]
pub struct CaseOutcome {
    /// All disagreements found (empty = the case passed).
    pub divergences: Vec<Divergence>,
    /// Lower-bound admissibility probes evaluated on this case.
    pub lb_probes: usize,
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= DIST_TOL * (1.0 + a.abs().max(b.abs()))
}

fn diverge(case: &Case, oracle: &'static str, detail: String) -> Divergence {
    Divergence { case_id: case.id, oracle, detail: format!("{}: {detail}", case.label()) }
}

/// Runs the five differential oracles plus the LB-admissibility invariant.
pub fn run_case(case: &Case, lb_probe_budget: usize) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    let ps = match ProfiledSeries::from_values(&case.values) {
        Ok(ps) => ps,
        Err(e) => {
            out.divergences.push(diverge(case, "setup", format!("ProfiledSeries failed: {e}")));
            return out;
        }
    };
    if let Some(d) = check_diagonal_vs_row(case, &ps) {
        out.divergences.push(d);
    }
    if let Some(d) = check_valmod_vs_stomp(case, &ps) {
        out.divergences.push(d);
    }
    if let Some(d) = check_parallel_vs_sequential(case, &ps) {
        out.divergences.push(d);
    }
    if let Some(d) = check_streaming_vs_batch(case) {
        out.divergences.push(d);
    }
    if let Some(d) = check_serve_cached_vs_cold(case) {
        out.divergences.push(d);
    }
    let (probes, lb_div) = check_lb_admissibility(case, &ps, lb_probe_budget);
    out.lb_probes = probes;
    out.divergences.extend(lb_div);
    out
}

/// The diagonal-blocked STOMP kernel against the row streamer — *bit-exact*,
/// on `mp` and `ip` both, across degenerate block widths (1 and wider than
/// the series) and a 3-worker parallel run with a reused workspace.
pub fn check_diagonal_vs_row(case: &Case, ps: &ProfiledSeries) -> Option<Divergence> {
    let l = case.l_min;
    let policy = ExclusionPolicy::HALF;
    let row = match stomp_row(ps, l, policy) {
        Ok(p) => p,
        Err(e) => return Some(diverge(case, "diagonal-vs-row", format!("row kernel: {e}"))),
    };
    let bit_identical = |got: &MatrixProfile, what: &str| -> Option<Divergence> {
        if got.len() != row.len() {
            return Some(diverge(
                case,
                "diagonal-vs-row",
                format!("{what}: profile lengths differ: {} vs {}", got.len(), row.len()),
            ));
        }
        for i in 0..row.len() {
            if got.mp[i].to_bits() != row.mp[i].to_bits() || got.ip[i] != row.ip[i] {
                return Some(diverge(
                    case,
                    "diagonal-vs-row",
                    format!(
                        "{what}: row {i} at l={l}: diagonal ({}, {}) vs row ({}, {})",
                        got.mp[i], got.ip[i], row.mp[i], row.ip[i]
                    ),
                ));
            }
        }
        None
    };
    // Block width 1 (pure diagonal walk), a small width that splits the
    // trapezoids mid-series, and one wider than any case (single block).
    for block in [1usize, 7, 1 << 20] {
        let mut ws = Workspace::with_block(block);
        let diag = match stomp_diagonal_ws(ps, l, policy, &mut ws) {
            Ok(p) => p,
            Err(e) => return Some(diverge(case, "diagonal-vs-row", format!("block={block}: {e}"))),
        };
        if let Some(d) = bit_identical(&diag, &format!("block={block}")) {
            return Some(d);
        }
        // Reuse the same workspace at another length: cached plans and
        // recycled buffers must not leak state between calls.
        if case.l_max > l {
            let reused = match stomp_diagonal_ws(ps, case.l_max, policy, &mut ws) {
                Ok(p) => p,
                Err(e) => {
                    return Some(diverge(case, "diagonal-vs-row", format!("reuse: {e}")));
                }
            };
            let fresh = match stomp_row(ps, case.l_max, policy) {
                Ok(p) => p,
                Err(e) => {
                    return Some(diverge(case, "diagonal-vs-row", format!("reuse row: {e}")));
                }
            };
            for i in 0..fresh.len() {
                if reused.mp[i].to_bits() != fresh.mp[i].to_bits() || reused.ip[i] != fresh.ip[i] {
                    return Some(diverge(
                        case,
                        "diagonal-vs-row",
                        format!("reused workspace diverges at l={} row {i}", case.l_max),
                    ));
                }
            }
        }
    }
    let mut ws = Workspace::new();
    let par = match stomp_diagonal_parallel_ws(ps, l, policy, 3, &mut ws) {
        Ok(p) => p,
        Err(e) => return Some(diverge(case, "diagonal-vs-row", format!("parallel: {e}"))),
    };
    bit_identical(&par, "parallel threads=3")
}

/// VALMOD against independent STOMP-per-length: the paper's Problem 1 answer
/// must match the quadratic baseline at every length.
pub fn check_valmod_vs_stomp(case: &Case, ps: &ProfiledSeries) -> Option<Divergence> {
    let config = ValmodConfig::new(case.l_min, case.l_max).with_p(case.p);
    let valmod = match Valmod::from_config(config).run_on(ps) {
        Ok(out) => out,
        Err(e) => return Some(diverge(case, "valmod-vs-stomp", format!("valmod failed: {e}"))),
    };
    let oracle = match stomp_range(ps, case.l_min, case.l_max, ExclusionPolicy::HALF, 1) {
        Ok(out) => out,
        Err(e) => return Some(diverge(case, "valmod-vs-stomp", format!("stomp failed: {e}"))),
    };
    for (report, expect) in valmod.per_length.iter().zip(&oracle) {
        match (&report.motif, expect) {
            (Some(got), Some(want)) if !close(got.dist, want.dist) => {
                return Some(diverge(
                    case,
                    "valmod-vs-stomp",
                    format!("l={}: valmod dist {} vs stomp {}", report.l, got.dist, want.dist),
                ));
            }
            (Some(_), Some(_)) | (None, None) => {}
            (got, want) => {
                return Some(diverge(
                    case,
                    "valmod-vs-stomp",
                    format!("l={}: presence mismatch valmod={got:?} stomp={want:?}", report.l),
                ));
            }
        }
    }
    None
}

/// The chunked parallel kernel against the sequential row streamer, element
/// by element over the full profile at `l_min`.
pub fn check_parallel_vs_sequential(case: &Case, ps: &ProfiledSeries) -> Option<Divergence> {
    let l = case.l_min;
    let seq = match stomp(ps, l, ExclusionPolicy::HALF) {
        Ok(p) => p,
        Err(e) => return Some(diverge(case, "parallel-vs-sequential", format!("stomp: {e}"))),
    };
    let par = match stomp_parallel(ps, l, ExclusionPolicy::HALF, 3) {
        Ok(p) => p,
        Err(e) => return Some(diverge(case, "parallel-vs-sequential", format!("parallel: {e}"))),
    };
    if seq.len() != par.len() {
        return Some(diverge(
            case,
            "parallel-vs-sequential",
            format!("profile lengths differ: {} vs {}", seq.len(), par.len()),
        ));
    }
    for i in 0..seq.len() {
        let (a, b) = (seq.mp[i], par.mp[i]);
        let agree = (a.is_finite() == b.is_finite()) && (!a.is_finite() || close(a, b));
        if !agree {
            return Some(diverge(
                case,
                "parallel-vs-sequential",
                format!("row {i} at l={l}: sequential {a} vs parallel {b}"),
            ));
        }
    }
    None
}

/// Streaming append against a batch recompute: seeding with a prefix and
/// appending the rest must land on the batch profile of the whole series.
pub fn check_streaming_vs_batch(case: &Case) -> Option<Divergence> {
    let l = case.l_min;
    let n = case.values.len();
    let seed_len = (n / 2).clamp(l + 1, n);
    let mut streaming =
        match StreamingProfile::new(&case.values[..seed_len], l, ExclusionPolicy::HALF) {
            Ok(s) => s,
            Err(e) => return Some(diverge(case, "streaming-vs-batch", format!("seed: {e}"))),
        };
    if let Err(e) = streaming.extend(&case.values[seed_len..]) {
        return Some(diverge(case, "streaming-vs-batch", format!("append: {e}")));
    }
    let streamed = streaming.profile();
    let ps = match ProfiledSeries::from_values(&case.values) {
        Ok(ps) => ps,
        Err(e) => return Some(diverge(case, "streaming-vs-batch", format!("batch: {e}"))),
    };
    let batch = match stomp(&ps, l, ExclusionPolicy::HALF) {
        Ok(p) => p,
        Err(e) => return Some(diverge(case, "streaming-vs-batch", format!("batch: {e}"))),
    };
    if streamed.len() != batch.len() {
        return Some(diverge(
            case,
            "streaming-vs-batch",
            format!("profile lengths differ: {} vs {}", streamed.len(), batch.len()),
        ));
    }
    for i in 0..batch.len() {
        let (s, b) = (streamed.mp[i], batch.mp[i]);
        let agree = (s.is_finite() == b.is_finite()) && (!s.is_finite() || close(s, b));
        if !agree {
            return Some(diverge(
                case,
                "streaming-vs-batch",
                format!("row {i} at l={l}: streamed {s} vs batch {b}"),
            ));
        }
    }
    None
}

/// The payload body of a response, with the per-run `compute_ms` timing
/// stripped by construction (only `body` is compared).
fn body_of(payload: &Value) -> Option<&Value> {
    payload.get("body")
}

/// A cache hit must return the same payload as the miss that filled it, and
/// a cold query on a fresh engine must agree with both.
pub fn check_serve_cached_vs_cold(case: &Case) -> Option<Divergence> {
    let spec = |series: &str| QuerySpec {
        series: series.to_string(),
        kind: QueryKind::Motifs { top: 3 },
        l_min: case.l_min,
        l_max: case.l_max,
        p: case.p,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    };
    let config = EngineConfig::builder().workers(1).build().expect("static engine config");

    let run_pair = |name: &str| -> Result<(Value, Value, bool, bool), String> {
        let engine = QueryEngine::new(config.clone());
        let result = (|| {
            engine
                .load(name, case.values.clone(), &[], ExclusionPolicy::HALF, false)
                .map_err(|e| format!("load: {e}"))?;
            let cold = engine.query(spec(name)).map_err(|e| format!("cold query: {e}"))?;
            let warm = engine.query(spec(name)).map_err(|e| format!("warm query: {e}"))?;
            Ok((
                cold.payload.as_ref().clone(),
                warm.payload.as_ref().clone(),
                cold.cached,
                warm.cached,
            ))
        })();
        engine.shutdown();
        engine.join();
        result
    };

    let (cold_a, warm_a, cold_a_cached, warm_a_cached) = match run_pair("s") {
        Ok(x) => x,
        Err(e) => return Some(diverge(case, "serve-cached-vs-cold", e)),
    };
    if cold_a_cached || !warm_a_cached {
        return Some(diverge(
            case,
            "serve-cached-vs-cold",
            format!("cache flags wrong: cold.cached={cold_a_cached} warm.cached={warm_a_cached}"),
        ));
    }
    if body_of(&cold_a) != body_of(&warm_a) {
        return Some(diverge(
            case,
            "serve-cached-vs-cold",
            "cached body differs from the miss that filled it".into(),
        ));
    }
    // An independent engine answering the same query cold must agree too.
    let (cold_b, _, _, _) = match run_pair("s") {
        Ok(x) => x,
        Err(e) => return Some(diverge(case, "serve-cached-vs-cold", e)),
    };
    if body_of(&cold_a) != body_of(&cold_b) {
        return Some(diverge(
            case,
            "serve-cached-vs-cold",
            "cold bodies differ across independent engines".into(),
        ));
    }
    None
}

/// The Eq. 2 invariant: every harvested lower bound, scaled to any longer
/// length, must stay at or below the true z-normalised distance there.
///
/// Probes are subsampled deterministically (by the case id) down to
/// `budget` evaluations so a run's total stays proportional to its case
/// count; returns how many probes actually ran.
pub fn check_lb_admissibility(
    case: &Case,
    ps: &ProfiledSeries,
    budget: usize,
) -> (usize, Vec<Divergence>) {
    let mut divergences = Vec::new();
    let harvested = match compute_matrix_profile(ps, case.l_min, case.p, ExclusionPolicy::HALF) {
        Ok(h) => h,
        Err(e) => {
            divergences.push(diverge(case, "lb-admissibility", format!("anchor: {e}")));
            return (0, divergences);
        }
    };
    let t = ps.centered();
    let n = ps.len();
    let mut rng = Xoshiro256::seed_from_u64(0xad31_5518 ^ case.id);

    // Enumerate candidate (partial, entry, k) probes lazily and sample.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    for (pi, pp) in harvested.partials.iter().enumerate() {
        for (ei, _) in pp.entries().iter().enumerate() {
            for k in 1..=(case.l_max - case.l_min) {
                candidates.push((pi, ei, k));
            }
        }
    }
    rng.shuffle(&mut candidates);
    candidates.truncate(budget);

    let mut probes = 0usize;
    for (pi, ei, k) in candidates {
        let pp = &harvested.partials[pi];
        let entry = pp.entries()[ei];
        let new_l = pp.anchor_l + k;
        let (a, b) = (pp.owner, entry.neighbor);
        if a + new_l > n || b + new_l > n {
            continue; // the pair does not exist at this length
        }
        let sigma_new = ps.std(a, new_l);
        let lb = lb_scale(entry.lb_base(), pp.anchor_sigma, sigma_new);
        let true_dist = zdist_naive(&t[a..a + new_l], &t[b..b + new_l]);
        probes += 1;
        if !true_dist.is_finite() {
            continue; // excluded/flat pair: no claim to check
        }
        if lb > true_dist + DIST_TOL * (1.0 + true_dist) {
            divergences.push(diverge(
                case,
                "lb-admissibility",
                format!(
                    "owner {a} neighbor {b}: LB {lb} exceeds true distance {true_dist} at l={new_l} (anchor {})",
                    pp.anchor_l
                ),
            ));
            if divergences.len() >= 3 {
                break; // enough evidence for one case
            }
        }
    }
    (probes, divergences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::generate_case;

    #[test]
    fn clean_cases_produce_no_divergences() {
        // A fast spot check across families; the full sweep lives behind
        // `valmod check`.
        for id in 0..8 {
            let case = generate_case(42, id);
            let out = run_case(&case, 40);
            assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        }
    }

    #[test]
    fn diagonal_oracle_passes_every_family() {
        for id in 0..8 {
            let case = generate_case(7, id);
            let ps = ProfiledSeries::from_values(&case.values).unwrap();
            assert!(check_diagonal_vs_row(&case, &ps).is_none(), "family id {id}");
        }
    }

    #[test]
    fn admissibility_probes_are_counted() {
        let case = generate_case(42, 4); // RandomWalk
        let ps = ProfiledSeries::from_values(&case.values).unwrap();
        let (probes, div) = check_lb_admissibility(&case, &ps, 64);
        assert!(div.is_empty(), "{div:?}");
        assert!(probes > 0);
    }

    #[test]
    fn a_poisoned_case_is_reported_not_panicked() {
        // Hand-build an invalid case (NaN sample): the harness must turn it
        // into a reported divergence, never a panic.
        let mut case = generate_case(42, 4);
        case.values[3] = f64::NAN;
        let out = run_case(&case, 10);
        assert!(!out.divergences.is_empty());
        assert_eq!(out.divergences[0].oracle, "setup");
    }

    #[test]
    fn tolerance_comparator_accepts_rounding_but_not_bugs() {
        assert!(close(1.0, 1.0 + 1e-9));
        assert!(close(1e9, 1e9 * (1.0 + 1e-8)));
        assert!(!close(1.0, 1.001));
        assert!(!close(0.0, 0.1));
    }
}
