//! The incremental-extension oracle matrix: differential evidence that the
//! streaming / tail-extension fast paths are invisible, bit for bit.
//!
//! Every APPEND in the serve layer now rides three incremental machines —
//! the batched [`StreamingProfile::extend`], the per-length tail extension
//! ([`valmod_mp::extend_profile`]), and the planner's parked
//! [`SegmentState`](valmod_core::SegmentState) revival — each of which
//! claims bitwise equality with the cold computation it replaces. This
//! module earns that claim under *randomized append schedules* drawn from
//! the run's seed:
//!
//! * **streaming-batch-identity** — a batched `extend` over each chunk of
//!   the schedule produces exactly the profile of the per-sample `append`
//!   loop (`to_bits` on distances, exact on indices);
//! * **profile-extension-vs-cold-stomp** — a cached `MatrixProfile` grown
//!   via [`valmod_mp::extend_profile`] after every chunk is bit-identical
//!   to a cold STOMP over the grown prefix in the same stats frame;
//! * **serve-schedule-vs-cold-history** — a warm engine whose fragments
//!   are lazily extended across a random APPEND/query interleaving answers
//!   byte-identically to fresh zero-cache engines replaying the same
//!   LOAD + APPEND history, and its STATS prove the extension path (not a
//!   recompute) produced those answers.
//!
//! Schedules deliberately mix single samples, sub-window chunks, and
//! batches longer than the subsequence length, so the extension machinery
//! crosses every alignment of the QT recurrence.

use std::time::Duration;

use valmod_data::rng::Xoshiro256;
use valmod_mp::{
    extend_profile, stomp_with_tail, ExclusionPolicy, MatrixProfile, ProfiledSeries,
    StreamingProfile,
};
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::Value;

/// Outcome of the extension oracle matrix.
#[derive(Debug, Default)]
pub struct ExtendReport {
    /// Scenario names that ran clean.
    pub passed: Vec<String>,
    /// `(scenario, what went wrong)` for the rest.
    pub failed: Vec<(String, String)>,
}

impl ExtendReport {
    /// True when every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push((name.to_string(), why)),
        }
    }
}

/// Draws an append schedule: `batches` chunks whose sizes cross the
/// interesting alignments relative to subsequence length `l` — single
/// samples, partial windows, and chunks longer than a full window.
fn draw_schedule(rng: &mut Xoshiro256, batches: usize, l: usize) -> Vec<usize> {
    (0..batches)
        .map(|_| match rng.uniform_usize(0, 3) {
            0 => 1,
            1 => rng.uniform_usize(2, l.max(3)),
            _ => rng.uniform_usize(l, 2 * l + 8),
        })
        .collect()
}

fn diff_profiles(a: &MatrixProfile, b: &MatrixProfile, what: &str) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{what}: {} vs {} rows", a.len(), b.len()));
    }
    for i in 0..a.len() {
        if a.mp[i].to_bits() != b.mp[i].to_bits() || a.ip[i] != b.ip[i] {
            return Err(format!(
                "{what}: row {i} diverges ({} @ {} vs {} @ {})",
                a.mp[i], a.ip[i], b.mp[i], b.ip[i]
            ));
        }
    }
    Ok(())
}

/// Batched [`StreamingProfile::extend`] vs the per-sample `append` loop,
/// chunk by chunk across random schedules.
fn streaming_batch_identity(seed: u64) -> Result<(), String> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    for round in 0..3u32 {
        let l = rng.uniform_usize(8, 33);
        let base_n = rng.uniform_usize(4 * l, 8 * l);
        let schedule = draw_schedule(&mut rng, 4, l);
        let total = base_n + schedule.iter().sum::<usize>();
        let series = valmod_data::generators::random_walk(total, seed ^ u64::from(round));

        let mut batched = StreamingProfile::new(&series[..base_n], l, ExclusionPolicy::HALF)
            .map_err(|e| format!("round {round}: batched seed: {e}"))?;
        let mut singles = StreamingProfile::new(&series[..base_n], l, ExclusionPolicy::HALF)
            .map_err(|e| format!("round {round}: per-sample seed: {e}"))?;
        let mut n = base_n;
        for &k in &schedule {
            batched
                .extend(&series[n..n + k])
                .map_err(|e| format!("round {round}: extend({k}): {e}"))?;
            for &x in &series[n..n + k] {
                singles.append(x).map_err(|e| format!("round {round}: append: {e}"))?;
            }
            n += k;
            diff_profiles(
                &batched.profile(),
                &singles.profile(),
                &format!("round {round} schedule {schedule:?} at n={n}"),
            )?;
        }
    }
    Ok(())
}

/// A cached per-length profile grown via [`extend_profile`] vs a cold STOMP
/// of the grown prefix, in the frame pinned at the base load.
fn profile_extension_vs_cold_stomp(seed: u64) -> Result<(), String> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    for round in 0..3u32 {
        let l = rng.uniform_usize(8, 41);
        let base_n = rng.uniform_usize(6 * l, 10 * l);
        let schedule = draw_schedule(&mut rng, 3, l);
        let total = base_n + schedule.iter().sum::<usize>();
        let series = valmod_data::generators::random_walk(total, seed ^ u64::from(round));

        let base = ProfiledSeries::from_values(&series[..base_n])
            .map_err(|e| format!("round {round}: base: {e}"))?;
        let offset = base.offset();
        let (mut profile, mut state) = stomp_with_tail(&base, l, ExclusionPolicy::HALF)
            .map_err(|e| format!("round {round}: cold half: {e}"))?;
        let mut n = base_n;
        for &k in &schedule {
            n += k;
            let grown = ProfiledSeries::with_offset(&series[..n], offset)
                .map_err(|e| format!("round {round}: grown: {e}"))?;
            extend_profile(&mut profile, &mut state, &grown)
                .map_err(|e| format!("round {round}: extend: {e}"))?;
            let cold = valmod_mp::stomp(&grown, l, ExclusionPolicy::HALF)
                .map_err(|e| format!("round {round}: cold stomp: {e}"))?;
            diff_profiles(
                &profile,
                &cold,
                &format!("round {round} l={l} schedule {schedule:?} at n={n}"),
            )?;
        }
    }
    Ok(())
}

fn spec(kind: QueryKind, l_min: usize, l_max: usize) -> QuerySpec {
    QuerySpec {
        series: "s".into(),
        kind,
        l_min,
        l_max,
        p: 5,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    }
}

fn body_of(payload: &Value) -> Result<String, String> {
    payload.get("body").map(Value::encode).ok_or_else(|| "payload missing \"body\"".to_string())
}

fn planner_stat(stats: &Value, key: &str) -> Result<usize, String> {
    stats
        .get("planner")
        .and_then(|p| p.get(key))
        .and_then(Value::as_usize)
        .ok_or_else(|| format!("STATS missing planner.{key}"))
}

/// A fresh zero-cache engine that replays `history` (LOAD of the first
/// slice, APPEND of the rest) and answers `s` cold.
fn cold_history_body(history: &[&[f64]], s: QuerySpec) -> Result<String, String> {
    let cfg = EngineConfig::builder()
        .workers(1)
        .queue_depth(16)
        .cache_bytes(0)
        .fragment_cache_bytes(0)
        .default_deadline(Duration::from_secs(300))
        .build()
        .map_err(|e| format!("cold engine config: {e}"))?;
    let engine = QueryEngine::new(cfg);
    let result = (|| {
        engine
            .load("s", history[0].to_vec(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("cold load: {e}"))?;
        for batch in &history[1..] {
            engine.append("s", batch).map_err(|e| format!("cold append: {e}"))?;
        }
        let out = engine.query(s).map_err(|e| format!("cold query: {e}"))?;
        body_of(&out.payload)
    })();
    engine.shutdown();
    engine.join();
    result
}

/// A warm engine driven through a random APPEND/query interleaving vs
/// fresh same-history cold engines, byte for byte, with STATS proving the
/// answers came off the extension path.
fn serve_schedule_vs_cold_history(seed: u64) -> Result<(), String> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let l = 24;
    let base_n = 500;
    let schedule = draw_schedule(&mut rng, 3, l);
    let total = base_n + schedule.iter().sum::<usize>();
    let (values, _) = valmod_data::generators::plant_motif(total, l, 2, 0.001, seed);

    let cfg = EngineConfig::builder()
        .workers(1)
        .queue_depth(16)
        .cache_bytes(0)
        .fragment_cache_bytes(8 << 20)
        .default_deadline(Duration::from_secs(300))
        .build()
        .map_err(|e| format!("warm engine config: {e}"))?;
    let engine = QueryEngine::new(cfg);
    let result = (|| {
        engine
            .load("s", values[..base_n].to_vec(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("warm load: {e}"))?;
        let queries: [(QueryKind, usize, usize); 2] =
            [(QueryKind::Motifs { top: 3 }, 16, 40), (QueryKind::Discords { top: 2 }, 16, 32)];
        // Prime the fragments, then interleave appends with re-queries.
        for (kind, lo, hi) in &queries {
            engine
                .query(spec(kind.clone(), *lo, *hi))
                .map_err(|e| format!("priming query: {e}"))?;
        }
        let mut n = base_n;
        let mut history: Vec<&[f64]> = vec![&values[..base_n]];
        for &k in &schedule {
            engine.append("s", &values[n..n + k]).map_err(|e| format!("append({k}): {e}"))?;
            history.push(&values[n..n + k]);
            n += k;
            for (kind, lo, hi) in &queries {
                let q = || spec(kind.clone(), *lo, *hi);
                let out = engine.query(q()).map_err(|e| format!("warm query: {e}"))?;
                let warm = body_of(&out.payload)?;
                let cold = cold_history_body(&history, q())?;
                if warm != cold {
                    return Err(format!(
                        "extended answer diverges from cold same-history replay at \
                         {kind:?} l in [{lo}, {hi}], n={n}: {warm} vs {cold}"
                    ));
                }
            }
        }
        let stats = engine.stats();
        if planner_stat(&stats, "fragments_extended")? == 0 {
            return Err("the schedule never exercised the extension path".into());
        }
        if planner_stat(&stats, "fragment_invalidated")? == 0 {
            return Err("stale fragments were never lazily collected".into());
        }
        Ok(())
    })();
    engine.shutdown();
    engine.join();
    result
}

/// Runs every extension scenario and reports.
pub fn run_extend_matrix(seed: u64) -> ExtendReport {
    let mut report = ExtendReport::default();
    report.record("streaming-batch-identity", streaming_batch_identity(seed ^ 0x7374_7265));
    report.record(
        "profile-extension-vs-cold-stomp",
        profile_extension_vs_cold_stomp(seed ^ 0x7461_696c),
    );
    report.record(
        "serve-schedule-vs-cold-history",
        serve_schedule_vs_cold_history(seed ^ 0x6578_7464),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_extend_matrix_passes() {
        let report = run_extend_matrix(42);
        assert!(report.all_passed(), "failed scenarios: {:?}", report.failed);
        assert_eq!(report.passed.len(), 3);
    }

    #[test]
    fn schedules_cross_the_window_alignments() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let schedule = draw_schedule(&mut rng, 64, 16);
        assert!(schedule.contains(&1), "no single-sample batch in {schedule:?}");
        assert!(schedule.iter().any(|&k| k > 16), "no over-window batch in {schedule:?}");
        assert!(schedule.iter().all(|&k| k >= 1));
    }
}
