//! The serve fault injector: hostile and unlucky clients replayed against a
//! real loopback [`valmod_serve::Server`].
//!
//! Each scenario asserts three things: the server never panics (it keeps
//! answering a well-formed `ping` afterwards), no connection handler leaks
//! (the live-connection count drains back to the baseline), and the series
//! store's version counter is never corrupted by a half-delivered mutation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use valmod_serve::engine::{EngineConfig, QueryEngine};
use valmod_serve::{Client, ServeError, Server};

/// The line cap used by the harness server — small, so the oversized-line
/// scenario is cheap to trigger.
const FAULT_LINE_CAP: usize = 4096;

/// Outcome of the full fault matrix.
#[derive(Debug, Default)]
pub struct FaultReport {
    /// Scenario names that ran clean.
    pub passed: Vec<String>,
    /// `(scenario, what went wrong)` for the rest.
    pub failed: Vec<(String, String)>,
}

impl FaultReport {
    /// True when every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push((name.to_string(), why)),
        }
    }
}

/// Sends raw bytes on a fresh connection, optionally reading one response
/// line back (with a timeout so a silent close cannot hang the harness).
fn raw_exchange(
    addr: std::net::SocketAddr,
    payload: &[u8],
    read_reply: bool,
) -> Result<Option<String>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream.write_all(payload).map_err(|e| format!("write: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    if !read_reply {
        return Ok(None); // drop the connection mid-frame
    }
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => return Err(format!("read: {e}")),
        }
        if buf.len() > 1 << 20 {
            return Err("reply unreasonably long".into());
        }
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Asserts the server still answers a well-formed ping.
fn expect_alive(addr: std::net::SocketAddr) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
    client.ping().map_err(|e| format!("ping after fault: {e}"))
}

/// Asserts the reply is an error response of the given kind.
fn expect_error_reply(reply: Option<String>, kind: &str) -> Result<(), String> {
    let line = reply.ok_or("expected a reply, connection just closed")?;
    if line.contains("\"ok\":false") && line.contains(&format!("\"kind\":\"{kind}\"")) {
        Ok(())
    } else {
        Err(format!("expected a {kind:?} error reply, got {line:?}"))
    }
}

/// Runs every fault scenario against one loopback server and reports.
pub fn run_fault_matrix() -> FaultReport {
    let mut report = FaultReport::default();

    let engine =
        QueryEngine::new(EngineConfig::builder().workers(1).build().expect("static engine config"));
    let server = match Server::bind("127.0.0.1:0", engine) {
        Ok(s) => s.with_max_line_bytes(FAULT_LINE_CAP),
        Err(e) => {
            report.record("bind", Err(format!("{e}")));
            return report;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            report.record("bind", Err(format!("{e}")));
            return report;
        }
    };
    let connections = server.connection_count();
    let server_thread = std::thread::spawn(move || server.run());

    // A resident series the mutation scenarios aim at.
    let seeded: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
    let setup = Client::connect(addr)
        .map_err(|e| format!("setup connect: {e}"))
        .and_then(|mut c| c.load("s", seeded, vec![], false).map_err(|e| format!("load: {e}")));
    let baseline_version = match setup {
        Ok(ack) => ack.version,
        Err(why) => {
            report.record("setup", Err(why));
            return report;
        }
    };

    // 1. Truncated frame: half a request, then disconnect. No reply is
    // owed; the server must simply survive.
    report.record(
        "truncated-frame",
        raw_exchange(addr, br#"{"cmd":"motifs","na"#, false).and_then(|_| expect_alive(addr)),
    );

    // 2. Oversized line: a newline-free flood past the cap must be answered
    // with a protocol error, not buffered without bound. (Kept just over
    // the cap so the server consumes the whole flood before replying — a
    // close with unread bytes would RST the reply away.)
    let flood = vec![b'x'; FAULT_LINE_CAP + 1024];
    report.record(
        "oversized-line",
        raw_exchange(addr, &flood, true)
            .and_then(|reply| expect_error_reply(reply, "protocol"))
            .and_then(|()| expect_alive(addr)),
    );

    // 3. Malformed JSON gets an error reply and the connection stays open.
    report.record(
        "malformed-json",
        raw_exchange(addr, b"{nope\n", true)
            .and_then(|reply| expect_error_reply(reply, "protocol"))
            .and_then(|()| expect_alive(addr)),
    );

    // 4. Invalid UTF-8 is a protocol error, not a panic.
    report.record(
        "invalid-utf8",
        raw_exchange(addr, b"\xff\xfe\xfd\n", true)
            .and_then(|reply| expect_error_reply(reply, "protocol"))
            .and_then(|()| expect_alive(addr)),
    );

    // 5. Mid-APPEND disconnect: the half-delivered mutation must not tick
    // the version counter or partially mutate the store.
    report.record(
        "mid-append-disconnect",
        raw_exchange(addr, br#"{"cmd":"append","name":"s","values":[1.0,2.0"#, false)
            .and_then(|_| expect_alive(addr))
            .and_then(|()| {
                let mut client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
                let ack = client
                    .append("s", vec![5.0])
                    .map_err(|e| format!("append after fault: {e}"))?;
                let (version, len) = (ack.version, ack.len);
                if version != baseline_version + 1 {
                    return Err(format!(
                        "version counter corrupted: expected {}, got {version}",
                        baseline_version + 1
                    ));
                }
                if len != 65 {
                    return Err(format!("series length corrupted: expected 65, got {len}"));
                }
                Ok(())
            }),
    );

    // 6. Hostile numeric fields: a beyond-2^53 sleep must be rejected, not
    // cast-truncated into a bounded-looking sleep.
    report.record(
        "hostile-sleep-ms",
        raw_exchange(addr, b"{\"cmd\":\"sleep\",\"ms\":1e300}\n", true)
            .and_then(|reply| expect_error_reply(reply, "protocol"))
            .and_then(|()| expect_alive(addr)),
    );

    // 7. Deadline expiry: a sleep whose deadline lapses while it holds the
    // only worker must come back as a deadline error, and the worker must
    // be reusable afterwards.
    report.record(
        "deadline-expiry",
        Client::connect(addr)
            .map_err(|e| format!("connect: {e}"))
            .and_then(|mut c| {
                match c.sleep(300, Some(Duration::from_millis(1))) {
                    Err(ServeError::DeadlineExceeded) => Ok(()),
                    Err(ServeError::Busy) => Ok(()), // queue full counts as refusal
                    Ok(_) => Err("expired sleep reported success".into()),
                    Err(e) => Err(format!("unexpected error: {e}")),
                }
            })
            .and_then(|()| expect_alive(addr)),
    );

    // 8. Non-finite ingestion: APPEND with a NaN is rejected whole — the
    // version counter must not move.
    report.record(
        "non-finite-append",
        raw_exchange(addr, b"{\"cmd\":\"append\",\"name\":\"s\",\"values\":[NaN]}\n", true)
            .and_then(|reply| expect_error_reply(reply, "protocol"))
            .and_then(|()| {
                let mut client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
                let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
                let ver = stats
                    .get("series")
                    .and_then(valmod_serve::Value::as_arr)
                    .and_then(|arr| {
                        arr.iter().find(|s| {
                            s.get("name").and_then(valmod_serve::Value::as_str) == Some("s")
                        })
                    })
                    .and_then(|s| s.get("version"))
                    .and_then(valmod_serve::Value::as_u64)
                    .ok_or("stats did not report series \"s\"")?;
                if ver == baseline_version + 1 {
                    Ok(())
                } else {
                    Err(format!(
                        "version moved on rejected append: {ver} (expected {})",
                        baseline_version + 1
                    ))
                }
            }),
    );

    // Drain check: every fault connection's handler must unwind.
    let drain = || -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if connections.live() == 0 {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(format!("{} connection handler(s) leaked", connections.live()));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    report.record("connection-drain", drain());

    // Graceful shutdown still works after the whole matrix.
    let shutdown = Client::connect(addr)
        .map_err(|e| format!("connect: {e}"))
        .and_then(|mut c| c.shutdown().map_err(|e| format!("shutdown: {e}")))
        .and_then(|()| match server_thread.join() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(format!("server run() errored: {e}")),
            Err(_) => Err("server thread panicked".into()),
        });
    report.record("graceful-shutdown", shutdown);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_fault_matrix_passes() {
        let report = run_fault_matrix();
        assert!(report.all_passed(), "failed scenarios: {:?}", report.failed);
        assert!(report.passed.len() >= 9, "expected ≥9 scenarios, ran {:?}", report.passed);
    }
}
