//! The concurrent stress oracle: deterministic evidence that the sharded
//! serve engine is linearizable per series under real thread contention.
//!
//! Each schedule boots one sharded [`QueryEngine`] and drives it from N
//! in-process client threads, every thread walking its own seeded mix of
//! APPEND / MOTIFS / DISCORDS / SAVE / STATS (and occasional
//! LOAD-replace) operations. Every observation is logged as an event
//! carrying the engine-reported `(series, version)` — the acked version
//! for ingests, the payload version plus the encoded body for query
//! replies. After the threads join, three properties are asserted:
//!
//! * **per-thread monotonicity** — in any one thread's program order, the
//!   versions observed for a series never go backwards (an ack for v
//!   followed by a reply computed against v−1 would be a real-time
//!   linearizability violation);
//! * **version contiguity** — merging every thread's ingest acks per
//!   series yields exactly `1..=max`, each version once: concurrent
//!   appends and replaces can neither skip a version nor collide on one
//!   (the regression the store's `retired`-generation protocol exists to
//!   prevent);
//! * **replay identity** — a cold, zero-cache, single-threaded engine
//!   replays each series' linearized LOAD + APPEND prefix version by
//!   version (the same replay discipline as the [`crate::extend`]
//!   oracles), and every recorded reply body must be **byte-identical**
//!   to the cold answer at its version. Caching, coalescing, fragment
//!   reuse, and striped locking must all be invisible on the wire.
//!
//! Every operation must also *succeed*: a `Busy` or `DeadlineExceeded`
//! under a generous queue and deadline is reported as a failure, which is
//! how a hung coalesced follower (the leader-death regression) would
//! surface here.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use valmod_data::rng::Xoshiro256;
use valmod_mp::ExclusionPolicy;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::Value;

/// The fixed series roster every schedule runs against.
const SERIES: [&str; 3] = ["alpha", "beta", "gamma"];

/// Operations each client thread performs per schedule.
const OPS_PER_THREAD: usize = 8;

/// Outcome of the stress matrix.
#[derive(Debug, Default)]
pub struct StressReport {
    /// Rung names (`mixed-threads-N`) that ran clean.
    pub passed: Vec<String>,
    /// `(rung, what went wrong)` for the rest.
    pub failed: Vec<(String, String)>,
}

impl StressReport {
    /// True when every rung passed.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push((name.to_string(), why)),
        }
    }
}

/// One observed fact about the engine, in a thread's program order.
#[derive(Debug, Clone)]
enum Event {
    /// A LOAD or APPEND ack: the engine assigned `version` to this
    /// mutation, whose samples are `values`.
    Ingest { series: usize, version: u64, values: Vec<f64>, replace: bool },
    /// A query reply: computed against `version`, body encoded as
    /// `body` bytes.
    Reply { series: usize, version: u64, spec: usize, body: String },
}

impl Event {
    fn series_version(&self) -> (usize, u64) {
        match self {
            Event::Ingest { series, version, .. } | Event::Reply { series, version, .. } => {
                (*series, *version)
            }
        }
    }
}

/// The query roster, by id — small length ranges so a schedule's worth of
/// cold computes stays fast while still crossing the planner's grid.
fn spec_of(id: usize, series: &str) -> QuerySpec {
    let (kind, l_min, l_max) = match id {
        0 => (QueryKind::Motifs { top: 3 }, 16, 24),
        1 => (QueryKind::Discords { top: 2 }, 16, 20),
        _ => (QueryKind::Motifs { top: 2 }, 20, 28),
    };
    QuerySpec {
        series: series.into(),
        kind,
        l_min,
        l_max,
        p: 5,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    }
}

const SPEC_COUNT: usize = 3;

/// A random-walk series drawn from the schedule's own rng (no shared
/// generator state across threads).
fn walk(rng: &mut Xoshiro256, n: usize) -> Vec<f64> {
    let mut x = 0.0;
    (0..n)
        .map(|_| {
            x += rng.uniform(-1.0, 1.0);
            x
        })
        .collect()
}

fn payload_version_and_body(payload: &Value) -> Result<(u64, String), String> {
    let version = payload
        .get("version")
        .and_then(Value::as_usize)
        .ok_or_else(|| "reply payload missing \"version\"".to_string())? as u64;
    let body = payload
        .get("body")
        .map(Value::encode)
        .ok_or_else(|| "reply payload missing \"body\"".to_string())?;
    Ok((version, body))
}

/// One client thread's life: `OPS_PER_THREAD` seeded operations, every
/// observation logged. Any engine error fails the schedule — with a
/// 120-second deadline and a deep queue, `Busy`/`DeadlineExceeded` can
/// only mean a scheduling bug (e.g. a follower stuck on a dead flight).
fn client_thread(engine: &QueryEngine, seed: u64, thread_id: usize) -> Result<Vec<Event>, String> {
    let mut rng = Xoshiro256::seed_from_u64(
        seed ^ (thread_id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut log = Vec::new();
    for op in 0..OPS_PER_THREAD {
        let series = rng.uniform_usize(0, SERIES.len());
        let name = SERIES[series];
        let ctx = |what: &str, e: &dyn std::fmt::Display| {
            format!("thread {thread_id} op {op}: {what} on {name}: {e}")
        };
        match rng.uniform_usize(0, 8) {
            0..=3 => {
                let spec = rng.uniform_usize(0, SPEC_COUNT);
                let out = engine.query(spec_of(spec, name)).map_err(|e| ctx("query", &e))?;
                let (version, body) = payload_version_and_body(&out.payload)?;
                log.push(Event::Reply { series, version, spec, body });
            }
            4 | 5 => {
                let k = rng.uniform_usize(1, 25);
                let batch: Vec<f64> = (0..k).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let (version, _) = engine.append(name, &batch).map_err(|e| ctx("append", &e))?;
                log.push(Event::Ingest { series, version, values: batch, replace: false });
            }
            6 => {
                if rng.uniform_usize(0, 4) == 0 {
                    // Replace: rewrite the series under concurrent traffic.
                    let n = rng.uniform_usize(180, 260);
                    let values = walk(&mut rng, n);
                    let (version, _) = engine
                        .load(name, values.clone(), &[], ExclusionPolicy::HALF, true)
                        .map_err(|e| ctx("replace", &e))?;
                    log.push(Event::Ingest { series, version, values, replace: true });
                } else {
                    engine.persist().map_err(|e| ctx("save", &e))?;
                }
            }
            _ => {
                let stats = engine.stats();
                if stats.get("engine").and_then(|e| e.get("stripes")).is_none() {
                    return Err(format!(
                        "thread {thread_id} op {op}: STATS missing engine.stripes"
                    ));
                }
            }
        }
    }
    Ok(log)
}

/// Versions must never go backwards within one thread's program order,
/// and the merged per-series ingest acks must be exactly `1..=max`.
fn verify_versions(logs: &[Vec<Event>]) -> Result<(), String> {
    for (t, log) in logs.iter().enumerate() {
        let mut last = [0u64; SERIES.len()];
        for ev in log {
            let (s, v) = ev.series_version();
            if v < last[s] {
                return Err(format!(
                    "thread {t}: {} version went backwards: observed {v} after {}",
                    SERIES[s], last[s]
                ));
            }
            last[s] = v;
        }
    }
    for (s, name) in SERIES.iter().enumerate() {
        let mut versions: Vec<u64> = logs
            .iter()
            .flatten()
            .filter_map(|ev| match ev {
                Event::Ingest { series, version, .. } if *series == s => Some(*version),
                _ => None,
            })
            .collect();
        versions.sort_unstable();
        for (i, v) in versions.iter().enumerate() {
            let expected = i as u64 + 1;
            if *v != expected {
                return Err(format!(
                    "{name}: ingest versions not contiguous: expected {expected}, \
                     found {v} (all: {versions:?})"
                ));
            }
        }
    }
    Ok(())
}

/// Replays each series' linearized ingest history on a cold zero-cache
/// single-threaded engine, answering every recorded reply at its version
/// and requiring byte identity.
fn verify_replay(logs: &[Vec<Event>]) -> Result<(), String> {
    for (s, &name) in SERIES.iter().enumerate() {
        let mut ingests: Vec<&Event> = logs
            .iter()
            .flatten()
            .filter(|ev| matches!(ev, Event::Ingest { series, .. } if *series == s))
            .collect();
        ingests.sort_by_key(|ev| ev.series_version().1);
        // (version, spec) → every body observed for that pair; the cold
        // engine answers each pair once.
        let mut replies: HashMap<(u64, usize), Vec<&String>> = HashMap::new();
        for ev in logs.iter().flatten() {
            if let Event::Reply { series, version, spec, body } = ev {
                if *series == s {
                    replies.entry((*version, *spec)).or_default().push(body);
                }
            }
        }
        let cold = QueryEngine::new(
            EngineConfig::builder()
                .workers(1)
                .queue_depth(16)
                .cache_bytes(0)
                .fragment_cache_bytes(0)
                .default_deadline(Duration::from_secs(300))
                .build()
                .map_err(|e| format!("cold engine config: {e}"))?,
        );
        let result = (|| {
            for ev in &ingests {
                let Event::Ingest { version, values, replace, .. } = ev else { unreachable!() };
                let acked = if *replace || *version == 1 {
                    cold.load(name, values.clone(), &[], ExclusionPolicy::HALF, *version > 1)
                        .map_err(|e| format!("{name}: cold load v{version}: {e}"))?
                        .0
                } else {
                    cold.append(name, values)
                        .map_err(|e| format!("{name}: cold append v{version}: {e}"))?
                        .0
                };
                if acked != *version {
                    return Err(format!(
                        "{name}: linearized replay desynced: cold engine acked v{acked} \
                         where the stressed engine acked v{version}"
                    ));
                }
                for spec in 0..SPEC_COUNT {
                    let Some(bodies) = replies.get(&(*version, spec)) else { continue };
                    let out = cold
                        .query(spec_of(spec, name))
                        .map_err(|e| format!("{name}: cold query v{version}: {e}"))?;
                    let (cold_version, cold_body) = payload_version_and_body(&out.payload)?;
                    if cold_version != *version {
                        return Err(format!(
                            "{name}: cold replay answered v{cold_version} at v{version}"
                        ));
                    }
                    for body in bodies {
                        if *body != &cold_body {
                            return Err(format!(
                                "{name}: reply diverges from cold linearized replay at \
                                 v{version} spec {spec}: {body} vs {cold_body}"
                            ));
                        }
                    }
                }
            }
            Ok(())
        })();
        cold.shutdown();
        cold.join();
        result?;
    }
    Ok(())
}

/// Runs one schedule: boot engine, initial loads, N client threads, join,
/// verify. Every 8th schedule runs durable (snapshots + WAL under a temp
/// dir) so SAVE and the per-series WAL ordering are stressed too.
fn run_schedule(seed: u64, threads: usize, schedule: usize) -> Result<(), String> {
    let master =
        seed ^ (schedule as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ ((threads as u64) << 48);
    let mut rng = Xoshiro256::seed_from_u64(master);
    let durable = schedule % 8 == 7;
    let dir = durable.then(|| {
        std::env::temp_dir().join(format!(
            "valmod_stress_{}_{}_{threads}_{schedule}",
            std::process::id(),
            seed
        ))
    });
    if let Some(d) = &dir {
        let _ = std::fs::remove_dir_all(d);
    }
    let mut builder = EngineConfig::builder()
        .workers(threads)
        .queue_depth(256)
        .cache_bytes(1 << 20)
        .fragment_cache_bytes(1 << 20)
        .default_deadline(Duration::from_secs(120));
    if let Some(d) = &dir {
        builder = builder.data_dir(d.clone());
    }
    let engine = Arc::new(
        QueryEngine::open(builder.build().map_err(|e| format!("engine config: {e}"))?)
            .map_err(|e| format!("engine open: {e}"))?,
    );
    let mut logs: Vec<Vec<Event>> = Vec::with_capacity(threads + 1);
    // The initial loads are their own "thread" in the linearized record.
    let mut setup = Vec::with_capacity(SERIES.len());
    for (i, name) in SERIES.iter().enumerate() {
        let n = rng.uniform_usize(200, 320);
        let values = walk(&mut rng, n);
        let (version, _) = engine
            .load(name, values.clone(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("initial load of {name}: {e}"))?;
        setup.push(Event::Ingest { series: i, version, values, replace: false });
    }
    logs.push(setup);
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || client_thread(&engine, master, t))
        })
        .collect();
    let mut first_err: Option<String> = None;
    for h in handles {
        match h.join() {
            Ok(Ok(log)) => logs.push(log),
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert_with(|| "client thread panicked".to_string());
            }
        }
    }
    engine.shutdown();
    engine.join();
    if let Some(d) = &dir {
        let _ = std::fs::remove_dir_all(d);
    }
    if let Some(e) = first_err {
        return Err(format!("schedule {schedule}: {e}"));
    }
    verify_versions(&logs).map_err(|e| format!("schedule {schedule}: {e}"))?;
    verify_replay(&logs).map_err(|e| format!("schedule {schedule}: {e}"))
}

fn run_rung(seed: u64, threads: usize, schedules: usize) -> Result<(), String> {
    for schedule in 0..schedules {
        run_schedule(seed, threads, schedule)?;
    }
    Ok(())
}

/// Runs the stress matrix. `threads == 0` runs the default ladder — 8
/// single-threaded schedules (the sequential baseline the oracle itself
/// must pass) plus 64 four-threaded schedules (the concurrency proof the
/// acceptance bar asks for). Any other value runs one rung at exactly
/// that thread count: 8 schedules single-threaded, 64 otherwise.
pub fn run_stress_matrix(seed: u64, threads: usize) -> StressReport {
    let rungs: Vec<(usize, usize)> = match threads {
        0 => vec![(1, 8), (4, 64)],
        1 => vec![(1, 8)],
        t => vec![(t, 64)],
    };
    let mut report = StressReport::default();
    for (t, schedules) in rungs {
        report.record(&format!("mixed-threads-{t}x{schedules}"), run_rung(seed, t, schedules));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_concurrent_rung_is_clean() {
        // Small enough for a debug-build unit test; the full ladder runs
        // under `valmod check` in release.
        run_rung(42, 2, 2).unwrap();
    }

    #[test]
    fn verify_versions_rejects_a_gap_and_a_collision() {
        let ingest =
            |series, version| Event::Ingest { series, version, values: vec![0.0], replace: false };
        // Contiguous: fine.
        assert!(verify_versions(&[vec![ingest(0, 1), ingest(0, 2)]]).is_ok());
        // Gap: 1 then 3.
        let gap = verify_versions(&[vec![ingest(0, 1), ingest(0, 3)]]);
        assert!(gap.is_err(), "gap must be rejected");
        // Collision: two acks for version 2 (the replace/append race).
        let collision = verify_versions(&[vec![ingest(0, 1), ingest(0, 2)], vec![ingest(0, 2)]]);
        assert!(collision.is_err(), "version collision must be rejected");
    }

    #[test]
    fn verify_versions_rejects_backwards_observations() {
        let reply =
            |series, version| Event::Reply { series, version, spec: 0, body: String::new() };
        let ok = verify_versions(&[vec![reply(0, 1), reply(0, 2), reply(1, 1)]]);
        assert!(ok.is_ok());
        // Same thread sees v2 then v1 on one series: linearizability bug.
        let backwards = verify_versions(&[vec![reply(0, 2), reply(0, 1)]]);
        assert!(backwards.is_err());
        // Across threads, no order is implied.
        let cross = verify_versions(&[vec![reply(0, 2)], vec![reply(0, 1)]]);
        assert!(cross.is_ok());
    }

    #[test]
    fn replay_catches_a_corrupted_body() {
        // Run a real single-threaded schedule, then tamper with one reply
        // body and assert the replay oracle notices.
        let master = 77u64;
        let engine = QueryEngine::new(
            EngineConfig::builder()
                .workers(1)
                .queue_depth(16)
                .cache_bytes(0)
                .fragment_cache_bytes(0)
                .default_deadline(Duration::from_secs(120))
                .build()
                .unwrap(),
        );
        let mut rng = Xoshiro256::seed_from_u64(master);
        let values = walk(&mut rng, 240);
        let (v, _) =
            engine.load(SERIES[0], values.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
        let out = engine.query(spec_of(0, SERIES[0])).unwrap();
        let (rv, body) = payload_version_and_body(&out.payload).unwrap();
        engine.shutdown();
        engine.join();
        let honest = vec![vec![
            Event::Ingest { series: 0, version: v, values, replace: false },
            Event::Reply { series: 0, version: rv, spec: 0, body: body.clone() },
        ]];
        assert!(verify_replay(&honest).is_ok(), "honest log must replay clean");
        let mut tampered = honest.clone();
        if let Event::Reply { body, .. } = &mut tampered[0][1] {
            body.push('!');
        }
        assert!(verify_replay(&tampered).is_err(), "tampered body must diverge");
    }
}
