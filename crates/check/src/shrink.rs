//! A minimising shrinker: given a failing case, search for the smallest
//! variant that still fails, so the regression test promoted from it is
//! readable (tens of samples, one length) rather than hundreds.
//!
//! The candidate moves are classic delta-debugging steps — drop the front
//! half, drop the back half, drop a middle quarter, collapse the length
//! range, drop `p` to 1 — applied greedily until a fixed point. Every move
//! preserves the case invariant `values.len() >= l_max + 1`, so shrunken
//! cases stay runnable.

use crate::generators::Case;

/// Every structurally smaller candidate one move away from `case`.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    let n = case.values.len();
    let floor = case.l_max + 1;

    // Halve from either end, then drop interior quarters.
    for (lo, hi) in [(0, n / 2), (n / 2, n), (0, 3 * n / 4), (n / 4, n)] {
        if hi - lo >= floor && hi - lo < n {
            let mut c = case.clone();
            c.values = case.values[lo..hi].to_vec();
            out.push(c);
        }
    }
    // Narrow the length range: one step off the top first (keeps the walk
    // monotone), then the two single-length collapses.
    if case.l_min < case.l_max {
        let mut c = case.clone();
        c.l_max -= 1;
        out.push(c);
        let mut c = case.clone();
        c.l_max = case.l_min;
        out.push(c);
        let mut c = case.clone();
        c.l_min = case.l_max;
        out.push(c);
    }
    // Simplify the partial-profile capacity.
    if case.p > 1 {
        let mut c = case.clone();
        c.p = 1;
        out.push(c);
    }
    out
}

/// Greedily minimises `case` under `fails` (true = still failing). The
/// returned case fails whenever the input did; `max_steps` bounds the work
/// so a flaky predicate cannot loop forever.
pub fn shrink(case: &Case, mut fails: impl FnMut(&Case) -> bool) -> Case {
    let mut current = case.clone();
    let mut steps = 0usize;
    'outer: while steps < 200 {
        for cand in candidates(&current) {
            steps += 1;
            if fails(&cand) {
                current = cand;
                continue 'outer;
            }
            if steps >= 200 {
                break;
            }
        }
        break; // no candidate fails: local minimum
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::generate_case;

    #[test]
    fn shrinks_a_length_triggered_failure_to_one_length() {
        // Predicate: "fails whenever l_max >= 10 and the series has >= 40
        // samples" — a stand-in for a bug tied to long queries.
        let mut case = generate_case(42, 4);
        case.l_min = 6;
        case.l_max = 13;
        let fails = |c: &Case| c.l_max >= 10 && c.values.len() >= 40;
        assert!(fails(&case));
        let small = shrink(&case, fails);
        assert!(fails(&small), "shrunk case must still fail");
        assert!(small.values.len() < case.values.len());
        assert_eq!(small.l_max, 10, "l_max should shrink to the boundary");
    }

    #[test]
    fn shrinking_preserves_viability() {
        let case = generate_case(7, 9);
        let small = shrink(&case, |c| c.values.len() > c.l_max);
        assert!(small.values.len() > small.l_max);
        assert!(small.l_min <= small.l_max);
        assert!(small.p >= 1);
    }

    #[test]
    fn a_passing_case_is_returned_unchanged() {
        let case = generate_case(1, 2);
        let same = shrink(&case, |_| false);
        assert_eq!(same.values, case.values);
        assert_eq!((same.l_min, same.l_max, same.p), (case.l_min, case.l_max, case.p));
    }
}
