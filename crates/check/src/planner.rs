//! The query-planner oracle matrix: differential evidence that the serve
//! layer's fragment cache and single-flight coalescing are pure plumbing.
//!
//! Three scenarios, each seeded and deterministic:
//!
//! * **overlap-byte-identity** — a sequence of overlapping variable-length
//!   MOTIFS and DISCORDS queries on a warm, fragment-reusing engine (result
//!   cache off so every query reaches the planner) is compared byte-for-byte
//!   against independent cold engines with a zero fragment budget;
//! * **coalesce-single-compute** — N identical concurrent queries must be
//!   answered by exactly one compute, the followers carrying the coalesced
//!   marker and the leader's bytes;
//! * **append-extends-fragments** — an APPEND leaves the series' cached
//!   fragments parked; the next query lazily extends them over the new
//!   samples and its answer matches a cold engine replaying the same
//!   LOAD + APPEND history byte-for-byte.

use std::time::{Duration, Instant};

use valmod_mp::ExclusionPolicy;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::Value;

/// Outcome of the planner oracle matrix.
#[derive(Debug, Default)]
pub struct PlannerReport {
    /// Scenario names that ran clean.
    pub passed: Vec<String>,
    /// `(scenario, what went wrong)` for the rest.
    pub failed: Vec<(String, String)>,
}

impl PlannerReport {
    /// True when every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.failed.is_empty()
    }

    fn record(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => self.passed.push(name.to_string()),
            Err(why) => self.failed.push((name.to_string(), why)),
        }
    }
}

/// An engine whose result cache is off (every query reaches the planner)
/// but whose fragment cache is live.
fn warm_engine(workers: usize) -> Result<QueryEngine, String> {
    let cfg = EngineConfig::builder()
        .workers(workers)
        .queue_depth(16)
        .cache_bytes(0)
        .fragment_cache_bytes(8 << 20)
        .default_deadline(Duration::from_secs(300))
        .build()
        .map_err(|e| format!("warm engine config: {e}"))?;
    Ok(QueryEngine::new(cfg))
}

/// The oracle: no result cache, no fragment budget — every query is an
/// independent cold compute.
fn cold_engine() -> Result<QueryEngine, String> {
    let cfg = EngineConfig::builder()
        .workers(1)
        .queue_depth(16)
        .cache_bytes(0)
        .fragment_cache_bytes(0)
        .default_deadline(Duration::from_secs(300))
        .build()
        .map_err(|e| format!("cold engine config: {e}"))?;
    Ok(QueryEngine::new(cfg))
}

fn spec(kind: QueryKind, l_min: usize, l_max: usize) -> QuerySpec {
    QuerySpec {
        series: "s".into(),
        kind,
        l_min,
        l_max,
        p: 5,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    }
}

fn body_of(payload: &Value) -> Result<String, String> {
    payload.get("body").map(Value::encode).ok_or_else(|| "payload missing \"body\"".to_string())
}

/// Computes `spec` on a fresh cold engine and returns the encoded body.
fn cold_body(values: &[f64], s: QuerySpec) -> Result<String, String> {
    let engine = cold_engine()?;
    let result = (|| {
        engine
            .load("s", values.to_vec(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("cold load: {e}"))?;
        let out = engine.query(s).map_err(|e| format!("cold query: {e}"))?;
        body_of(&out.payload)
    })();
    engine.shutdown();
    engine.join();
    result
}

fn planner_stat(stats: &Value, key: &str) -> Result<usize, String> {
    stats
        .get("planner")
        .and_then(|p| p.get(key))
        .and_then(Value::as_usize)
        .ok_or_else(|| format!("STATS missing planner.{key}"))
}

/// Overlapping ranges on one warm engine vs independent cold engines.
fn overlap_byte_identity(seed: u64) -> Result<(), String> {
    let (values, _) = valmod_data::generators::plant_motif(700, 24, 2, 0.001, seed);
    let ranges: [(QueryKind, usize, usize); 5] = [
        (QueryKind::Motifs { top: 3 }, 16, 40),
        (QueryKind::Motifs { top: 3 }, 24, 48),
        (QueryKind::Discords { top: 2 }, 16, 40),
        (QueryKind::Motifs { top: 3 }, 32, 56),
        (QueryKind::Discords { top: 2 }, 20, 52),
    ];
    let engine = warm_engine(1)?;
    let result = (|| {
        engine
            .load("s", values.clone(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("warm load: {e}"))?;
        for (kind, lo, hi) in &ranges {
            let q = || spec(kind.clone(), *lo, *hi);
            let out = engine.query(q()).map_err(|e| format!("warm query: {e}"))?;
            let warm = body_of(&out.payload)?;
            let cold = cold_body(&values, q())?;
            if warm != cold {
                return Err(format!(
                    "warm planner body diverges from cold at {kind:?} l in [{lo}, {hi}]: \
                     {warm} vs {cold}"
                ));
            }
        }
        // The sequence overlaps heavily; the fragment cache must have
        // actually been exercised, or the scenario proves nothing.
        let stats = engine.stats();
        if planner_stat(&stats, "fragment_hits")? == 0 {
            return Err("overlapping ranges produced zero fragment hits".into());
        }
        Ok(())
    })();
    engine.shutdown();
    engine.join();
    result
}

/// N identical concurrent queries coalesce into one compute whose bytes
/// every follower receives.
fn coalesce_single_compute(seed: u64) -> Result<(), String> {
    const FOLLOWERS: usize = 3;
    let (values, _) = valmod_data::generators::plant_motif(1_400, 32, 2, 0.001, seed);
    let engine = std::sync::Arc::new(warm_engine(2)?);
    let result = (|| {
        engine
            .load("s", values, &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("load: {e}"))?;
        let leader = {
            let engine = std::sync::Arc::clone(&engine);
            std::thread::spawn(move || engine.query(spec(QueryKind::Motifs { top: 3 }, 16, 40)))
        };
        // Wait for the leader's flight to register before firing followers,
        // so they deterministically attach to it.
        let t0 = Instant::now();
        loop {
            if planner_stat(&engine.stats(), "inflight")? >= 1 {
                break;
            }
            if t0.elapsed() > Duration::from_secs(60) {
                return Err("leader flight never registered".into());
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let followers: Vec<_> = (0..FOLLOWERS)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || engine.query(spec(QueryKind::Motifs { top: 3 }, 16, 40)))
            })
            .collect();
        let lead = leader
            .join()
            .map_err(|_| "leader thread panicked".to_string())?
            .map_err(|e| format!("leader query: {e}"))?;
        if lead.cached || lead.coalesced {
            return Err("leader must be a genuine cold compute".into());
        }
        for follower in followers {
            let out = follower
                .join()
                .map_err(|_| "follower thread panicked".to_string())?
                .map_err(|e| format!("follower query: {e}"))?;
            if !out.coalesced {
                return Err("follower missing the coalesced marker".into());
            }
            if out.payload.encode() != lead.payload.encode() {
                return Err("follower bytes diverge from the leader".into());
            }
        }
        let stats = engine.stats();
        let engine_stats = stats.get("engine").ok_or("STATS missing engine section")?;
        let computed = engine_stats.get("computed").and_then(Value::as_usize).unwrap_or(0);
        let coalesced = engine_stats.get("coalesced").and_then(Value::as_usize).unwrap_or(0);
        if computed != 1 {
            return Err(format!("expected exactly 1 compute, saw {computed}"));
        }
        if coalesced != FOLLOWERS {
            return Err(format!("expected {FOLLOWERS} coalesced queries, saw {coalesced}"));
        }
        Ok(())
    })();
    engine.shutdown();
    engine.join();
    result
}

/// APPEND keeps fragments parked and extends them on the next touch; the
/// revived answer matches a cold engine replaying the same LOAD + APPEND
/// history (the stats frame is pinned at LOAD time, so same-history replay
/// — not a one-shot LOAD of the full series — is the bitwise oracle).
fn append_extends_fragments(seed: u64) -> Result<(), String> {
    let (values, _) = valmod_data::generators::plant_motif(700, 24, 2, 0.001, seed);
    let (head, tail) = values.split_at(650);
    let s = || spec(QueryKind::Motifs { top: 3 }, 16, 40);
    let engine = warm_engine(1)?;
    let result = (|| {
        engine
            .load("s", head.to_vec(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("load: {e}"))?;
        engine.query(s()).map_err(|e| format!("pre-append query: {e}"))?;
        let entries = planner_stat(&engine.stats(), "fragment_entries")?;
        if entries == 0 {
            return Err("query left no fragments to extend".into());
        }
        engine.append("s", tail).map_err(|e| format!("append: {e}"))?;
        if planner_stat(&engine.stats(), "fragment_entries")? != entries {
            return Err("append must leave fragments parked, not purge them".into());
        }
        let out = engine.query(s()).map_err(|e| format!("post-append query: {e}"))?;
        let warm = body_of(&out.payload)?;
        let stats = engine.stats();
        if planner_stat(&stats, "fragment_invalidated")? == 0 {
            return Err("the post-append query did not lazily collect stale fragments".into());
        }
        if planner_stat(&stats, "fragments_extended")? == 0 {
            return Err("the post-append query recomputed instead of extending".into());
        }
        let cold = cold_history_body(head, tail, s())?;
        if warm != cold {
            return Err(format!(
                "extended body diverges from a cold same-history run: {warm} vs {cold}"
            ));
        }
        Ok(())
    })();
    engine.shutdown();
    engine.join();
    result
}

/// Computes `spec` on a fresh cold engine that replays the same LOAD +
/// APPEND history and returns the encoded body.
fn cold_history_body(head: &[f64], tail: &[f64], s: QuerySpec) -> Result<String, String> {
    let engine = cold_engine()?;
    let result = (|| {
        engine
            .load("s", head.to_vec(), &[], ExclusionPolicy::HALF, false)
            .map_err(|e| format!("cold load: {e}"))?;
        engine.append("s", tail).map_err(|e| format!("cold append: {e}"))?;
        let out = engine.query(s).map_err(|e| format!("cold query: {e}"))?;
        body_of(&out.payload)
    })();
    engine.shutdown();
    engine.join();
    result
}

/// Runs every planner scenario and reports.
pub fn run_planner_matrix(seed: u64) -> PlannerReport {
    let mut report = PlannerReport::default();
    report.record("overlap-byte-identity", overlap_byte_identity(seed ^ 0x706c_616e));
    report.record("coalesce-single-compute", coalesce_single_compute(seed ^ 0x636f_616c));
    report.record("append-extends-fragments", append_extends_fragments(seed ^ 0x6672_6167));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_planner_matrix_passes() {
        let report = run_planner_matrix(42);
        assert!(report.all_passed(), "failed scenarios: {:?}", report.failed);
        assert_eq!(report.passed.len(), 3);
    }
}
