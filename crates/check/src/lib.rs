//! # valmod-check
//!
//! The differential-correctness harness of the VALMOD reproduction: a
//! deterministic, seeded sweep that pits every layer of the stack against
//! an independent implementation of the same question, plus a fault
//! injector for the serve layer. `valmod check --smoke --seed 42` is the CI
//! entry point; any non-zero seed reproduces a run bit-for-bit.
//!
//! Three pillars (DESIGN.md §10):
//!
//! * [`generators`] — adversarial series families (constant runs, isolated
//!   spikes, 1e-9 noise floors, 1e9 amplitudes, planted variable-length
//!   motifs, series barely longer than `ℓ_max`), each a pure function of
//!   `(seed, id)`;
//! * [`oracles`] — the diagonal-blocked kernel vs the row streamer
//!   (bit-exact, across block widths), VALMOD vs STOMP-per-length, parallel
//!   vs sequential, streaming-append vs batch recompute, serve cached vs
//!   cold, and the Eq. 2 lower-bound admissibility invariant probed against
//!   naive z-normalised distances;
//! * [`faults`] — truncated frames, oversized lines, malformed JSON,
//!   mid-`APPEND` disconnects, hostile numeric fields, and deadline expiry
//!   replayed against a real loopback server;
//! * [`cluster`] — the distributed-discovery matrix: coordinator/worker
//!   runs over real loopback TCP diffed bit-for-bit against the local
//!   executor, across partition shapes and under SIGKILLed, hung, and
//!   version-incompatible workers;
//! * [`recovery`] — kill-point crash injection against the durable store:
//!   WALs truncated before / mid / after a record and bit-flipped
//!   checksums, asserting the reopened store is bit-identical to replaying
//!   the surviving prefix and answers `MOTIFS` like a cold batch run;
//! * [`planner`] — the serve query planner probed differentially:
//!   fragment-composed and single-flight-coalesced answers diffed
//!   byte-for-byte against independent cold computes, and appends shown to
//!   park fragments that the next query lazily extends, bit-identically;
//! * [`extend`] — the incremental-extension machinery under randomized
//!   append schedules: batched streaming appends vs the per-sample loop,
//!   tail-extended per-length profiles vs cold STOMP, and warm engines vs
//!   cold same-history replays, all `to_bits`-exact;
//! * [`stress`] — the sharded engine under real thread contention: N
//!   client threads driving seeded mixed LOAD/APPEND/MOTIFS/DISCORDS/
//!   SAVE/STATS schedules, with per-thread version monotonicity, merged
//!   version contiguity, and byte-identical replies vs a cold
//!   single-threaded engine replaying each series' linearized history.
//!
//! Failing cases are [`shrink()`](shrink::shrink)-minimised before being reported, so a
//! divergence arrives as a few dozen samples and a single length — ready to
//! be promoted into a named regression test.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod extend;
pub mod faults;
pub mod generators;
pub mod oracles;
pub mod planner;
pub mod recovery;
pub mod shrink;
pub mod stress;

use std::fmt;

pub use cluster::{run_cluster_matrix, ClusterReport};
pub use extend::{run_extend_matrix, ExtendReport};
pub use faults::{run_fault_matrix, FaultReport};
pub use generators::{generate_case, Case, Family};
pub use oracles::{run_case, CaseOutcome, Divergence};
pub use planner::{run_planner_matrix, PlannerReport};
pub use recovery::{run_recovery_matrix, RecoveryReport};
pub use shrink::shrink;
pub use stress::{run_stress_matrix, StressReport};

/// Configuration of one `valmod check` run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Master seed; every case derives deterministically from it.
    pub seed: u64,
    /// Number of generated differential cases.
    pub cases: usize,
    /// Lower-bound admissibility probes per case (the run total is
    /// `cases × this`, minus pairs that stop existing at longer lengths).
    pub lb_probes_per_case: usize,
    /// Whether to run the serve fault-injection matrix.
    pub run_faults: bool,
    /// Whether to run the crash-recovery kill-point matrix.
    pub run_recovery: bool,
    /// Whether to run the distributed-discovery (cluster) matrix.
    pub run_cluster: bool,
    /// Whether to run the query-planner oracle matrix (fragment reuse and
    /// single-flight coalescing vs independent cold computes).
    pub run_planner: bool,
    /// Whether to run the incremental-extension oracle matrix (batched
    /// streaming appends, tail-extended profiles, and lazily revived
    /// fragments vs cold same-history recomputes, under randomized append
    /// schedules).
    pub run_extend: bool,
    /// Whether to run the concurrent stress oracle (sharded engine under
    /// N client threads vs cold linearized replays).
    pub run_stress: bool,
    /// Client thread count for the stress oracle. 0 runs the default
    /// ladder (1 thread × 8 schedules, then 4 threads × 64 schedules);
    /// any other value runs exactly that thread count.
    pub stress_threads: usize,
}

impl CheckConfig {
    /// The CI smoke preset: ≥ 200 cases, ≥ 1000 admissibility probes,
    /// fault, recovery, cluster, and planner matrices on.
    pub fn smoke(seed: u64) -> Self {
        CheckConfig {
            seed,
            cases: 216,
            lb_probes_per_case: 24,
            run_faults: true,
            run_recovery: true,
            run_cluster: true,
            run_planner: true,
            run_extend: true,
            run_stress: true,
            stress_threads: 0,
        }
    }
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig::smoke(42)
    }
}

/// The result of a full harness run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Differential cases executed.
    pub cases_run: usize,
    /// Lower-bound admissibility probes evaluated across all cases.
    pub lb_probes: usize,
    /// Every divergence found (after shrinking, one entry per case+oracle).
    pub divergences: Vec<Divergence>,
    /// Labels of the shrunk minimal reproductions, parallel to
    /// `divergences` where shrinking applied.
    pub shrunk_labels: Vec<String>,
    /// The fault-injection outcome (`None` when skipped).
    pub faults: Option<FaultReport>,
    /// The crash-recovery outcome (`None` when skipped).
    pub recovery: Option<RecoveryReport>,
    /// The distributed-discovery outcome (`None` when skipped).
    pub cluster: Option<ClusterReport>,
    /// The query-planner oracle outcome (`None` when skipped).
    pub planner: Option<PlannerReport>,
    /// The incremental-extension oracle outcome (`None` when skipped).
    pub extend: Option<ExtendReport>,
    /// The concurrent stress-oracle outcome (`None` when skipped).
    pub stress: Option<StressReport>,
}

impl CheckReport {
    /// True when the run found no divergences and no fault or recovery
    /// failures.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
            && self.faults.as_ref().is_none_or(FaultReport::all_passed)
            && self.recovery.as_ref().is_none_or(RecoveryReport::all_passed)
            && self.cluster.as_ref().is_none_or(ClusterReport::all_passed)
            && self.planner.as_ref().is_none_or(PlannerReport::all_passed)
            && self.extend.as_ref().is_none_or(ExtendReport::all_passed)
            && self.stress.as_ref().is_none_or(StressReport::all_passed)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential: {} cases, {} LB probes, {} divergence(s)",
            self.cases_run,
            self.lb_probes,
            self.divergences.len()
        )?;
        for d in &self.divergences {
            writeln!(f, "  DIVERGENCE [{}] {}", d.oracle, d.detail)?;
        }
        for label in &self.shrunk_labels {
            writeln!(f, "  shrunk to: {label}")?;
        }
        match &self.faults {
            None => writeln!(f, "faults: skipped")?,
            Some(fr) => {
                writeln!(f, "faults: {} passed, {} failed", fr.passed.len(), fr.failed.len())?;
                for (name, why) in &fr.failed {
                    writeln!(f, "  FAULT [{name}] {why}")?;
                }
            }
        }
        match &self.recovery {
            None => writeln!(f, "recovery: skipped")?,
            Some(rr) => {
                writeln!(f, "recovery: {} passed, {} failed", rr.passed.len(), rr.failed.len())?;
                for (name, why) in &rr.failed {
                    writeln!(f, "  RECOVERY [{name}] {why}")?;
                }
            }
        }
        match &self.cluster {
            None => writeln!(f, "cluster: skipped")?,
            Some(cr) => {
                writeln!(f, "cluster: {} passed, {} failed", cr.passed.len(), cr.failed.len())?;
                for (name, why) in &cr.failed {
                    writeln!(f, "  CLUSTER [{name}] {why}")?;
                }
            }
        }
        match &self.planner {
            None => writeln!(f, "planner: skipped")?,
            Some(pr) => {
                writeln!(f, "planner: {} passed, {} failed", pr.passed.len(), pr.failed.len())?;
                for (name, why) in &pr.failed {
                    writeln!(f, "  PLANNER [{name}] {why}")?;
                }
            }
        }
        match &self.extend {
            None => writeln!(f, "extend: skipped")?,
            Some(er) => {
                writeln!(f, "extend: {} passed, {} failed", er.passed.len(), er.failed.len())?;
                for (name, why) in &er.failed {
                    writeln!(f, "  EXTEND [{name}] {why}")?;
                }
            }
        }
        match &self.stress {
            None => writeln!(f, "stress: skipped")?,
            Some(sr) => {
                writeln!(f, "stress: {} passed, {} failed", sr.passed.len(), sr.failed.len())?;
                for (name, why) in &sr.failed {
                    writeln!(f, "  STRESS [{name}] {why}")?;
                }
            }
        }
        write!(f, "verdict: {}", if self.clean() { "CLEAN" } else { "DIVERGED" })
    }
}

/// Runs the harness: generates `config.cases` cases, runs every oracle over
/// each, shrinks any failure to a minimal reproduction, then (optionally)
/// replays the fault matrix.
pub fn run(config: &CheckConfig) -> CheckReport {
    let mut report = CheckReport::default();
    for id in 0..config.cases as u64 {
        let case = generate_case(config.seed, id);
        let outcome = run_case(&case, config.lb_probes_per_case);
        report.cases_run += 1;
        report.lb_probes += outcome.lb_probes;
        if outcome.divergences.is_empty() {
            continue;
        }
        // Shrink against the first diverging oracle, then report the
        // divergence as found on the minimal case.
        let oracle = outcome.divergences[0].oracle;
        let minimal = shrink(&case, |candidate| {
            run_case(candidate, config.lb_probes_per_case)
                .divergences
                .iter()
                .any(|d| d.oracle == oracle)
        });
        let minimal_outcome = run_case(&minimal, config.lb_probes_per_case);
        report.shrunk_labels.push(minimal.label());
        if minimal_outcome.divergences.is_empty() {
            // Flaky under shrinking — keep the original evidence.
            report.divergences.extend(outcome.divergences);
        } else {
            report.divergences.extend(minimal_outcome.divergences);
        }
    }
    if config.run_faults {
        report.faults = Some(run_fault_matrix());
    }
    if config.run_recovery {
        report.recovery = Some(run_recovery_matrix(config.seed));
    }
    if config.run_cluster {
        report.cluster = Some(run_cluster_matrix(config.seed));
    }
    if config.run_planner {
        report.planner = Some(run_planner_matrix(config.seed));
    }
    if config.run_extend {
        report.extend = Some(run_extend_matrix(config.seed));
    }
    if config.run_stress {
        report.stress = Some(run_stress_matrix(config.seed, config.stress_threads));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_run_is_clean_and_deterministic() {
        let config = CheckConfig {
            seed: 42,
            cases: 8,
            lb_probes_per_case: 16,
            run_faults: false,
            run_recovery: false,
            run_cluster: false,
            run_planner: false,
            run_extend: false,
            run_stress: false,
            stress_threads: 0,
        };
        let a = run(&config);
        assert!(a.clean(), "{a}");
        assert_eq!(a.cases_run, 8);
        assert!(a.lb_probes > 0);
        let b = run(&config);
        assert_eq!(a.lb_probes, b.lb_probes, "probe sampling must be deterministic");
    }

    #[test]
    fn the_report_displays_a_verdict() {
        let config = CheckConfig {
            seed: 7,
            cases: 2,
            lb_probes_per_case: 4,
            run_faults: false,
            run_recovery: false,
            run_cluster: false,
            run_planner: false,
            run_extend: false,
            run_stress: false,
            stress_threads: 0,
        };
        let text = run(&config).to_string();
        assert!(text.contains("differential: 2 cases"));
        assert!(text.contains("recovery: skipped"));
        assert!(text.contains("planner: skipped"));
        assert!(text.contains("extend: skipped"));
        assert!(text.contains("stress: skipped"));
        assert!(text.contains("verdict:"));
    }
}
