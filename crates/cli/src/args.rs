//! A small hand-rolled argument parser (no external dependencies are
//! permitted beyond the approved numeric crates, so no `clap`).
//!
//! Grammar: `valmod <subcommand> [--flag value]... [--switch]...`.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--switch` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of raw arguments (excluding the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut raw = raw.into_iter().peekable();
        let command =
            raw.next().ok_or_else(|| ArgError("missing subcommand; try `valmod help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!("expected a subcommand, got option {command:?}")));
        }
        let mut options = HashMap::new();
        let mut switches = Vec::new();
        while let Some(arg) = raw.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {arg:?}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty option name `--`".into()));
            }
            // `--key=value` form.
            if let Some((k, v)) = name.split_once('=') {
                options.insert(k.to_string(), v.to_string());
                continue;
            }
            // `--key value` form when the next token is not an option;
            // otherwise a bare switch.
            if raw.peek().is_some_and(|next| !next.starts_with("--")) {
                let value = raw
                    .next()
                    .ok_or_else(|| ArgError(format!("option --{name} is missing its value")))?;
                options.insert(name.to_string(), value);
            } else {
                switches.push(name.to_string());
            }
        }
        Ok(Args { command, options, switches })
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required parsed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.require(key)?;
        raw.parse().map_err(|_| ArgError(format!("cannot parse --{key} value {raw:?}")))
    }

    /// An optional parsed option with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| ArgError(format!("cannot parse --{key} value {raw:?}")))
            }
        }
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Rejects unknown options (call after reading everything you accept).
    pub fn reject_unknown(&self, accepted: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.switches.iter()) {
            if !accepted.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key} for `{}`; try `valmod help`",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ArgError> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_options_and_switches() {
        let a = parse(&["discover", "--input", "x.csv", "--min", "10", "--quiet"]).unwrap();
        assert_eq!(a.command, "discover");
        assert_eq!(a.require("input").unwrap(), "x.csv");
        assert_eq!(a.require_parsed::<usize>("min").unwrap(), 10);
        assert!(a.switch("quiet"));
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn parses_equals_form() {
        let a = parse(&["discover", "--min=16", "--name=a b"]).unwrap();
        assert_eq!(a.require_parsed::<usize>("min").unwrap(), 16);
        assert_eq!(a.require("name").unwrap(), "a b");
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["discover"]).unwrap();
        assert_eq!(a.parsed_or("p", 50usize).unwrap(), 50);
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--oops"]).is_err());
        assert!(parse(&["run", "stray"]).is_err());
        let a = parse(&["run", "--p", "abc"]).unwrap();
        assert!(a.require_parsed::<usize>("p").is_err());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn trailing_flag_is_a_switch_not_a_panic() {
        // Regression: a flag at the very end of the line used to route
        // through an `unwrap()`; it must parse as a bare switch.
        let a = parse(&["discover", "--input", "x.csv", "--quiet"]).unwrap();
        assert!(a.switch("quiet"));
        let a = parse(&["discover", "--quiet"]).unwrap();
        assert!(a.switch("quiet"));
        assert!(a.get("quiet").is_none());
    }

    #[test]
    fn reject_unknown_catches_typos() {
        let a = parse(&["run", "--imput", "x"]).unwrap();
        assert!(a.reject_unknown(&["input"]).is_err());
        assert!(a.reject_unknown(&["imput"]).is_ok());
    }
}
