//! `valmod` — variable-length motif discovery from the command line.
//!
//! ```text
//! valmod discover  --input series.csv --min 64 --max 128 [--p 50] [--top 5] [--csv]
//! valmod sets      --input series.csv --min 64 --max 128 --k 10 --radius 3.0
//! valmod discords  --input series.csv --min 64 --max 128 [--top 3]
//! valmod mp        --input series.csv --length 96 [--output profile.csv]
//! valmod generate  --dataset ecg --n 20000 [--seed 1] --output series.csv
//! valmod serve     --addr 127.0.0.1:7700 --workers 2 --cache-mb 16
//! valmod query     --addr 127.0.0.1:7700 --cmd motifs --name sensor --min 64 --max 128
//! valmod help
//! ```
//!
//! Input files are text (one value per line, `#` comments, commas or
//! whitespace) or raw little-endian `f64` when the extension is
//! `.bin`/`.f64`.

mod args;

use std::process::ExitCode;

use args::{ArgError, Args};
use valmod_core::{
    compute_var_length_motif_sets, top_variable_length_motifs, variable_length_discords, Valmod,
    ValmodConfig,
};
use valmod_data::datasets::Dataset;
use valmod_data::io;
use valmod_data::series::Series;
use valmod_mp::{stomp, stomp_parallel, ExclusionPolicy, ProfiledSeries};
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::{Client, Server, Value as WireValue};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "discover" => cmd_discover(&args),
        "sets" => cmd_sets(&args),
        "discords" => cmd_discords(&args),
        "mp" => cmd_mp(&args),
        "profiles" => cmd_profiles(&args),
        "join" => cmd_join(&args),
        "hint" => cmd_hint(&args),
        "generate" => cmd_generate(&args),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        "stats" => cmd_stats(&args),
        "check" => cmd_check(&args),
        "bench" => cmd_bench(&args),
        "cluster-worker" => cmd_cluster_worker(&args),
        "cluster-run" => cmd_cluster_run(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}; try `valmod help`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

const USAGE: &str = "\
valmod — exact variable-length motif discovery (VALMOD, SIGMOD 2018)

USAGE:
  valmod discover  --input <file> --min <len> --max <len> [--p <n>] [--top <k>] [--csv]
                   [--threads <t>]
  valmod sets      --input <file> --min <len> --max <len> [--k <n>] [--radius <D>] [--p <n>]
                   [--threads <t>]
  valmod discords  --input <file> --min <len> --max <len> [--top <k>] [--p <n>] [--threads <t>]
  valmod mp        --input <file> --length <len> [--output <file>] [--threads <t>]
  valmod profiles  --input <file> --min <len> --max <len> [--p <n>] --output <dir>
  valmod join      --input <file> --other <file> --length <len> [--top <k>]
  valmod hint      --input <file> [--top <k>] [--min-period <n>]
  valmod generate  --dataset <ecg|emg|gap|astro|eeg> --n <points> [--seed <s>] --output <file>
  valmod serve     [--addr <host:port>] [--workers <n>] [--queue <n>] [--cache-mb <n>]
                   [--fragment-cache-mb <n>] [--threads <t>] [--stripes <n>]
                   [--data-dir <dir>]
  valmod query     --addr <host:port>
                   --cmd <load|append|motifs|sets|discords|stats|ping|save|shutdown>
                   [--name <series>] [--input <file>] [--hot <l1,l2>] [--replace]
                   [--min <len>] [--max <len>] [--p <n>] [--top <k>] [--k <n>] [--radius <D>]
                   [--deadline-ms <n>]
  valmod stats     [--addr <host:port>] [--raw]
  valmod check     [--smoke] [--seed <s>] [--cases <n>] [--probes <n>] [--no-faults]
                   [--no-recovery] [--no-cluster] [--no-planner] [--no-extend]
                   [--no-stress] [--stress-threads <t>]
  valmod bench     [--json] [--smoke] [--out <file>]
  valmod cluster-worker [--addr <host:port>]
  valmod cluster-run    --workers <h:p,h:p,...> --input <file> --min <len> --max <len>
                        [--top <k>] [--parts <n>] [--timeout-ms <n>] [--job <id>]
                        [--json] [--local]
  valmod help

Input: text (one value per line; `#` comments; commas/whitespace) or raw
little-endian f64 for `.bin`/`.f64` extensions.

--threads controls the worker count for the profile computations:
1 (default) is sequential, 0 uses every available core.

`serve` keeps named series resident, answers repeated queries from an LRU
result cache, plans variable-length queries over a per-length fragment
cache (`--fragment-cache-mb`, 0 disables), coalesces identical concurrent
queries into one compute, and accepts live APPEND ingestion; `query` is
its client. The store and both caches are sharded into `--stripes`
lock stripes (default 8) so requests for unrelated series never contend
on a shared lock.
With `--data-dir` the store is durable: loads write checksummed snapshots,
every append is WAL-logged (fsynced) before it applies, and a restart
recovers the directory — replaying the log over the latest snapshot and
truncating torn tails. `--cmd save` forces a snapshot flush.
`stats` renders a running server's metric registry — counters, gauges,
and latency histograms from every layer — in a human-readable table
(`--raw` prints the full STATS response verbatim instead).

`check` runs the seeded differential-correctness harness (valmod-check):
adversarial series through VALMOD-vs-STOMP, parallel-vs-sequential,
streaming-vs-batch, and serve cached-vs-cold oracles, the Eq. 2
lower-bound admissibility invariant, a serve fault-injection matrix, a
crash-recovery kill-point matrix against the durable store, and a query
planner matrix (fragment-composed and coalesced answers vs independent
cold computes; `--no-planner` skips it), and an incremental-extension
matrix (batched streaming appends, tail-extended profiles, and lazily
revived fragments vs cold same-history replays under randomized append
schedules; `--no-extend` skips it), and a concurrent stress oracle
(seeded multi-threaded LOAD/APPEND/query/SAVE/STATS schedules replayed
against a cold single-threaded engine, asserting version monotonicity
and byte-identical replies; `--no-stress` skips it, `--stress-threads`
pins the client-thread count — 0 runs the 1-and-4-thread ladder).
`--smoke` is the CI preset; without it a longer sweep runs. Exits
non-zero on any divergence.

`cluster-worker` runs one stateless shard-compute worker; `cluster-run`
partitions the ℓmin..ℓmax sweep into (length x diagonal-range) shards,
dispatches them across the worker pool with health checks, per-shard
deadlines, and redispatch from dead workers, and merges the partials
bit-identically to a single-node run. `--local` computes the same job in
process — its `--json` body is byte-comparable with a distributed run's.

`bench` runs the pinned kernel-regression suite (row kernel vs the
diagonal-blocked kernel over identical inputs, plus VALMOD and streaming
timings) and writes the snapshot to BENCH_core.json (`--out` overrides).
`--smoke` shrinks every size for CI plumbing checks; `--json` echoes the
snapshot to stdout instead of the table.";

fn load(args: &Args) -> Result<Series, Box<dyn std::error::Error>> {
    Ok(io::load_auto(args.require("input")?)?)
}

fn range_config(args: &Args) -> Result<ValmodConfig, Box<dyn std::error::Error>> {
    let l_min: usize = args.require_parsed("min")?;
    let l_max: usize = args.require_parsed("max")?;
    let p: usize = args.parsed_or("p", 50)?;
    let threads: usize = args.parsed_or("threads", 1)?;
    Ok(ValmodConfig::new(l_min, l_max).with_p(p).with_threads(threads))
}

fn cmd_discover(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "min", "max", "p", "top", "csv", "threads"])?;
    let series = load(args)?;
    let cfg = range_config(args)?;
    let top: usize = args.parsed_or("top", 5)?;
    let out = Valmod::from_config(cfg.clone()).run(&series)?;
    let motifs = top_variable_length_motifs(&out.valmp, top, cfg.policy);
    if args.switch("csv") {
        println!("rank,offset_a,offset_b,length,dist,norm_dist");
        for (rank, m) in motifs.iter().enumerate() {
            println!("{},{},{},{},{:.6},{:.6}", rank + 1, m.a, m.b, m.l, m.dist, m.norm_dist());
        }
    } else {
        println!(
            "top {} variable-length motifs in [{}, {}] over {} points:",
            motifs.len(),
            cfg.l_min,
            cfg.l_max,
            series.len()
        );
        for (rank, m) in motifs.iter().enumerate() {
            println!(
                "  #{:<2} offsets ({:>7}, {:>7})  length {:>5}  dist {:>9.4}  norm {:>8.4}",
                rank + 1,
                m.a,
                m.b,
                m.l,
                m.dist,
                m.norm_dist()
            );
        }
    }
    Ok(())
}

fn cmd_sets(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "min", "max", "p", "k", "radius", "threads"])?;
    let series = load(args)?;
    let k: usize = args.parsed_or("k", 10)?;
    let radius: f64 = args.parsed_or("radius", 3.0)?;
    let cfg = range_config(args)?.with_pair_tracking(k);
    let out = Valmod::from_config(cfg.clone()).run(&series)?;
    let ps = ProfiledSeries::new(&series);
    let tracker = out.best_pairs.ok_or("motif sets need pair tracking; pass --k 1 or greater")?;
    let (sets, stats) = compute_var_length_motif_sets(&ps, &tracker, radius, cfg.policy);
    println!(
        "{} motif sets (K={k}, D={radius}); {} expansions from snapshots, {} recomputed:",
        sets.len(),
        stats.served_from_snapshots,
        stats.recomputed_profiles
    );
    for (rank, set) in sets.iter().enumerate() {
        let mut offsets: Vec<usize> = set.members.iter().map(|m| m.offset).collect();
        offsets.sort_unstable();
        println!(
            "  set #{:<2} length {:>5}  radius {:>8.4}  frequency {:>3}  offsets {:?}",
            rank + 1,
            set.l,
            set.radius,
            set.frequency(),
            offsets
        );
    }
    Ok(())
}

fn cmd_discords(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "min", "max", "p", "top", "threads"])?;
    let series = load(args)?;
    let cfg = range_config(args)?;
    let top: usize = args.parsed_or("top", 3)?;
    let out = Valmod::from_config(cfg.clone()).run(&series)?;
    let discords = variable_length_discords(&out.valmp, top, cfg.policy);
    println!("top {} variable-length discords in [{}, {}]:", discords.len(), cfg.l_min, cfg.l_max);
    for (rank, d) in discords.iter().enumerate() {
        println!(
            "  #{:<2} offset {:>7}  best-match length {:>5}  nn {:>7}  score {:>8.4}",
            rank + 1,
            d.offset,
            d.l,
            d.nn,
            d.score
        );
    }
    Ok(())
}

fn cmd_mp(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "length", "output", "threads"])?;
    let series = load(args)?;
    let l: usize = args.require_parsed("length")?;
    let threads: usize = args.parsed_or("threads", 1)?;
    let ps = ProfiledSeries::new(&series);
    let profile = if threads == 1 {
        stomp(&ps, l, ExclusionPolicy::HALF)?
    } else {
        stomp_parallel(&ps, l, ExclusionPolicy::HALF, threads)?
    };
    match args.get("output") {
        Some(path) => {
            use std::io::Write;
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            writeln!(f, "offset,nn_dist,nn_offset")?;
            for i in 0..profile.len() {
                writeln!(f, "{},{:.6},{}", i, profile.mp[i], profile.ip[i] as i64)?;
            }
            println!("matrix profile (length {l}) written to {path}");
        }
        None => {
            if let Some((a, b, d)) = profile.motif_pair() {
                println!("motif pair at length {l}: offsets ({a}, {b}), dist {d:.4}");
            }
            if let Some((i, d)) = profile.discord() {
                println!("discord  at length {l}: offset {i}, nn dist {d:.4}");
            }
        }
    }
    Ok(())
}

fn cmd_profiles(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "min", "max", "p", "output"])?;
    let series = load(args)?;
    let cfg = range_config(args)?;
    let dir = std::path::PathBuf::from(args.require("output")?);
    std::fs::create_dir_all(&dir)?;
    let ps = ProfiledSeries::new(&series);
    let (profiles, stats) =
        valmod_core::complete_profiles(&ps, cfg.l_min, cfg.l_max, cfg.p, cfg.policy)?;
    use std::io::Write;
    for prof in &profiles {
        let path = dir.join(format!("mp_{}.csv", prof.l));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "offset,nn_dist,nn_offset")?;
        for i in 0..prof.len() {
            writeln!(f, "{},{:.6},{}", i, prof.mp[i], prof.ip[i] as i64)?;
        }
    }
    let certified: usize = stats.iter().map(|s| s.certified_rows).sum();
    let recomputed: usize = stats.iter().map(|s| s.recomputed_rows).sum();
    println!(
        "wrote {} complete matrix profiles to {} ({} rows certified by the lower bound, {} recomputed)",
        profiles.len(),
        dir.display(),
        certified,
        recomputed
    );
    Ok(())
}

fn cmd_join(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "other", "length", "top"])?;
    let a = load(args)?;
    let b = io::load_auto(args.require("other")?)?;
    let l: usize = args.require_parsed("length")?;
    let top: usize = args.parsed_or("top", 3)?;
    let pa = ProfiledSeries::new(&a);
    let pb = ProfiledSeries::new(&b);
    let join = valmod_mp::join::ab_join(&pa, &pb, l)?;
    let mut order: Vec<usize> = (0..join.len()).filter(|&i| join.mp[i].is_finite()).collect();
    order.sort_by(|&x, &y| join.mp[x].total_cmp(&join.mp[y]));
    println!("top {} cross-series matches at length {l}:", top.min(order.len()));
    let mut printed = 0usize;
    let mut last: Option<usize> = None;
    for &i in &order {
        if printed >= top {
            break;
        }
        // Skip trivially adjacent rows so the list shows distinct regions.
        if let Some(prev) = last {
            if i.abs_diff(prev) < l / 2 {
                continue;
            }
        }
        println!("  A offset {:>7} -> B offset {:>7}   dist {:>9.4}", i, join.ip[i], join.mp[i]);
        last = Some(i);
        printed += 1;
    }
    Ok(())
}

fn cmd_hint(args: &Args) -> CliResult {
    args.reject_unknown(&["input", "top", "min-period"])?;
    let series = load(args)?;
    let top: usize = args.parsed_or("top", 3)?;
    let min_period: usize = args.parsed_or("min-period", 8)?;
    let hints = valmod_core::suggest_length_ranges(series.values(), top, min_period, 0.15);
    if hints.is_empty() {
        println!("no strong periodicities detected; try a wider search range manually");
        return Ok(());
    }
    println!("suggested motif-length ranges (from autocorrelation peaks):");
    for h in &hints {
        println!(
            "  period {:>6}  -> try --min {} --max {}   (strength {:.2})",
            h.period, h.l_min, h.l_max, h.strength
        );
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "addr",
        "workers",
        "queue",
        "cache-mb",
        "fragment-cache-mb",
        "threads",
        "stripes",
        "data-dir",
    ])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7700");
    let mut builder = EngineConfig::builder()
        .workers(args.parsed_or("workers", 2)?)
        .queue_depth(args.parsed_or("queue", 32)?)
        .cache_bytes(args.parsed_or::<usize>("cache-mb", 16)? << 20)
        .fragment_cache_bytes(args.parsed_or::<usize>("fragment-cache-mb", 16)? << 20)
        .kernel_threads(args.parsed_or("threads", 1)?)
        .stripes(args.parsed_or("stripes", valmod_serve::DEFAULT_STRIPES)?);
    if let Some(dir) = args.get("data-dir") {
        builder = builder.data_dir(dir);
    }
    let cfg = builder.build()?;
    let data_dir = cfg.data_dir.clone();
    let server = Server::bind(addr, QueryEngine::open(cfg)?)?;
    // Tests and scripts parse this line to learn the ephemeral port; it
    // must stay the first line printed.
    println!("listening on {}", server.local_addr()?);
    if let Some(dir) = &data_dir {
        println!("data dir: {} (snapshots + WAL recovery enabled)", dir.display());
    }
    server.run()?;
    println!("server stopped");
    Ok(())
}

fn cmd_query(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "addr",
        "cmd",
        "name",
        "input",
        "hot",
        "replace",
        "min",
        "max",
        "p",
        "top",
        "k",
        "radius",
        "deadline-ms",
    ])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7700");
    let mut client = Client::connect(addr)?;
    match args.get("cmd").unwrap_or("stats") {
        "load" => {
            let name = args.require("name")?;
            let values = load(args)?.values().to_vec();
            let hot = parse_hot_lengths(args)?;
            let ack = client.load(name, values, hot, args.switch("replace"))?;
            println!("loaded {name}: version {}, {} points", ack.version, ack.len);
        }
        "append" => {
            let name = args.require("name")?;
            let values = load(args)?.values().to_vec();
            let ack = client.append(name, values)?;
            println!("appended to {name}: version {}, {} points", ack.version, ack.len);
        }
        cmd @ ("motifs" | "sets" | "discords") => {
            let kind = match cmd {
                "motifs" => QueryKind::Motifs { top: args.parsed_or("top", 5)? },
                "sets" => QueryKind::Sets {
                    k: args.parsed_or("k", 10)?,
                    radius: args.parsed_or("radius", 3.0)?,
                },
                _ => QueryKind::Discords { top: args.parsed_or("top", 3)? },
            };
            let deadline = match args.get("deadline-ms") {
                None => None,
                Some(_) => Some(std::time::Duration::from_millis(
                    args.require_parsed::<u64>("deadline-ms")?,
                )),
            };
            let spec = QuerySpec {
                series: args.require("name")?.to_string(),
                kind,
                l_min: args.require_parsed("min")?,
                l_max: args.require_parsed("max")?,
                p: args.parsed_or("p", 50)?,
                policy: ExclusionPolicy::HALF,
                deadline,
            };
            let resp = client.query(spec)?;
            println!("cached: {}", resp.cached.unwrap_or(false));
            if resp.coalesced {
                println!("coalesced: true");
            }
            println!("{}", resp.result.encode());
        }
        "stats" => println!("{}", client.stats()?.encode()),
        "ping" => {
            client.ping()?;
            println!("pong");
        }
        "save" => {
            let saved = client.save()?;
            println!("saved {} snapshot(s)", saved.snapshots);
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server shutting down");
        }
        other => {
            return Err(format!(
            "unknown --cmd {other:?} (load|append|motifs|sets|discords|stats|ping|save|shutdown)"
        )
            .into())
        }
    }
    Ok(())
}

/// `valmod stats`: the observability view. Fetches STATS from a running
/// server and renders the engine counters plus the metric registry (the
/// "obs" section the observability layer threads through the stack) as a
/// readable table instead of a single JSON line.
fn cmd_stats(args: &Args) -> CliResult {
    args.reject_unknown(&["addr", "raw"])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7700");
    let mut client = Client::connect(addr)?;
    let stats = client.stats()?;
    if args.switch("raw") {
        println!("{}", stats.encode());
        return Ok(());
    }
    if let Some(engine) = stats.get("engine") {
        let n = |key: &str| engine.get(key).and_then(WireValue::as_usize).unwrap_or(0);
        println!(
            "engine: {} queries ({} computed, {} hot), {} busy, {} deadline misses",
            n("queries"),
            n("computed"),
            n("served_hot"),
            n("busy_rejections"),
            n("deadline_misses")
        );
    }
    if let Some(cache) = stats.get("cache") {
        let n = |key: &str| cache.get(key).and_then(WireValue::as_usize).unwrap_or(0);
        println!(
            "cache:  {} entries, {}/{} bytes, {} hits / {} misses, {} evicted, {} invalidated",
            n("entries"),
            n("used_bytes"),
            n("budget_bytes"),
            n("hits"),
            n("misses"),
            n("evictions"),
            n("invalidated")
        );
    }
    if let Some(series) = stats.get("series").and_then(WireValue::as_arr) {
        for s in series {
            println!(
                "series: {} ({} points, version {})",
                s.get("name").and_then(WireValue::as_str).unwrap_or("?"),
                s.get("len").and_then(WireValue::as_usize).unwrap_or(0),
                s.get("version").and_then(WireValue::as_usize).unwrap_or(0)
            );
        }
    }
    let Some(obs) = stats.get("obs").and_then(WireValue::as_obj) else {
        println!("(server reported no metric registry)");
        return Ok(());
    };
    println!("\nmetrics ({}):", obs.len());
    for (key, metric) in obs {
        match metric {
            v if v.as_f64().is_some() => {
                println!("  {key:<28} {}", format_number(v.as_f64().unwrap()));
            }
            v => {
                let count = v.get("count").and_then(WireValue::as_usize).unwrap_or(0);
                let field = |name: &str| {
                    v.get(name)
                        .and_then(WireValue::as_f64)
                        .map_or_else(|| "-".to_string(), format_number)
                };
                println!(
                    "  {key:<28} count {count:<8} mean {:<12} p50 {:<12} p99 {}",
                    field("mean"),
                    field("p50"),
                    field("p99")
                );
            }
        }
    }
    Ok(())
}

/// `valmod check`: the differential-correctness harness. Runs seeded
/// adversarial cases through every oracle pair plus the serve fault matrix
/// and exits non-zero on any divergence — the CI smoke tier invokes
/// `valmod check --smoke --seed 42`.
fn cmd_check(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "smoke",
        "seed",
        "cases",
        "probes",
        "no-faults",
        "no-recovery",
        "no-cluster",
        "no-planner",
        "no-extend",
        "no-stress",
        "stress-threads",
    ])?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let mut config = valmod_check::CheckConfig::smoke(seed);
    if !args.switch("smoke") {
        // The longer sweep for local bug hunts.
        config.cases = 640;
        config.lb_probes_per_case = 48;
    }
    config.cases = args.parsed_or("cases", config.cases)?;
    config.lb_probes_per_case = args.parsed_or("probes", config.lb_probes_per_case)?;
    if args.switch("no-faults") {
        config.run_faults = false;
    }
    if args.switch("no-recovery") {
        config.run_recovery = false;
    }
    if args.switch("no-cluster") {
        config.run_cluster = false;
    }
    if args.switch("no-planner") {
        config.run_planner = false;
    }
    if args.switch("no-extend") {
        config.run_extend = false;
    }
    if args.switch("no-stress") {
        config.run_stress = false;
    }
    config.stress_threads = args.parsed_or("stress-threads", config.stress_threads)?;
    let report = valmod_check::run(&config);
    println!("{report}");
    if report.clean() {
        Ok(())
    } else {
        Err("correctness check found divergences".into())
    }
}

/// `valmod bench`: the pinned bench-regression suite guarding the
/// diagonal-blocked kernel. Times the pre-rewrite row kernel and the
/// current kernels over identical inputs in the same run, writes the
/// `BENCH_core.json` snapshot, and self-validates the emitted JSON through
/// the serve-layer wire parser before reporting success.
fn cmd_bench(args: &Args) -> CliResult {
    args.reject_unknown(&["json", "smoke", "out"])?;
    let smoke = args.switch("smoke");
    let out = args.get("out").unwrap_or("BENCH_core.json");
    let report = valmod_bench::run_suite(smoke);
    let json = report.to_json();
    // A malformed snapshot must fail the run, not poison the baseline.
    WireValue::parse(&json).map_err(|e| format!("emitted JSON failed self-validation: {e}"))?;
    std::fs::write(out, &json)?;
    if args.switch("json") {
        println!("{json}");
    } else {
        print!("{}", report.table());
        println!("snapshot written to {out}");
    }
    Ok(())
}

/// `valmod cluster-worker`: one stateless shard-compute worker. The
/// coordinator ships the series with `load_job`, so a worker needs no
/// input of its own and can be pointed at any job.
fn cmd_cluster_worker(args: &Args) -> CliResult {
    args.reject_unknown(&["addr"])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let worker = valmod_cluster::Worker::bind(
        addr,
        valmod_cluster::WorkerConfig::default(),
        valmod_obs::SharedRecorder::from(valmod_obs::Registry::new()),
    )?;
    // Tests and scripts parse this line to learn the ephemeral port; it
    // must stay the first line printed.
    println!("listening on {}", worker.local_addr()?);
    worker.run()?;
    println!("worker stopped");
    Ok(())
}

/// `valmod cluster-run`: the coordinator. Builds the (length x
/// diagonal-range) partition plan, dispatches shards across the pool, and
/// merges partials bit-identically to a local run. `--local` executes the
/// same job in process, so its `--json` body is the byte-for-byte oracle
/// a distributed body is diffed against.
fn cmd_cluster_run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "workers",
        "input",
        "min",
        "max",
        "top",
        "parts",
        "timeout-ms",
        "job",
        "json",
        "local",
    ])?;
    let series = load(args)?;
    let mut spec = valmod_cluster::JobSpec::new(
        args.get("job").unwrap_or("cli"),
        series.values().to_vec(),
        args.require_parsed("min")?,
        args.require_parsed("max")?,
    );
    spec.top = args.parsed_or("top", 5)?;
    let parts: usize = args.parsed_or("parts", 0)?;

    let registry = valmod_obs::Registry::new();
    let recorder = valmod_obs::SharedRecorder::from(registry.clone());
    let output = if args.switch("local") {
        valmod_cluster::run_local(&spec, parts.max(1), &recorder)?
    } else {
        let workers: Vec<String> = args
            .require("workers")?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        let cfg = valmod_cluster::CoordinatorConfig {
            parts_per_length: parts,
            shard_timeout: std::time::Duration::from_millis(args.parsed_or("timeout-ms", 60_000)?),
            ..valmod_cluster::CoordinatorConfig::default()
        };
        let run = valmod_cluster::run_distributed(&spec, &workers, &cfg, &recorder)?;
        // Worker accounting goes to stderr so `--json` stdout stays a pure
        // body that can be byte-diffed against a `--local` run.
        for report in &run.workers {
            if let Some(reason) = &report.rejected {
                eprintln!("worker {}: rejected ({reason})", report.addr);
            } else {
                eprintln!(
                    "worker {}: {} shard(s){}",
                    report.addr,
                    report.shards_done,
                    if report.died { ", died mid-job" } else { "" }
                );
            }
        }
        let snap = registry.snapshot();
        let counter = |key: &str| snap.counter(key).unwrap_or(0);
        eprintln!(
            "shards: {} dispatched, {} retried, {} redispatched",
            counter("cluster.shards.dispatched"),
            counter("cluster.shards.retried"),
            counter("cluster.shards.redispatched")
        );
        run.output
    };

    if args.switch("json") {
        println!("{}", output.body().encode());
        return Ok(());
    }
    println!(
        "merged {} per-length profiles over {} points (lengths {}..={})",
        output.profiles.len(),
        output.n,
        output.l_min,
        output.l_max
    );
    for (rank, m) in output.motifs.iter().enumerate() {
        println!(
            "  #{:<2} offsets ({:>7}, {:>7})  length {:>5}  dist {:>9.4}  norm {:>8.4}",
            rank + 1,
            m.a,
            m.b,
            m.l,
            m.dist,
            m.norm_dist()
        );
    }
    Ok(())
}

/// Compact numeric formatting: integers stay integral, everything else
/// gets two decimals — keeps the metric table scannable.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{n}")
    } else {
        format!("{n:.2}")
    }
}

fn parse_hot_lengths(args: &Args) -> Result<Vec<usize>, Box<dyn std::error::Error>> {
    let Some(raw) = args.get("hot") else { return Ok(Vec::new()) };
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| ArgError(format!("cannot parse --hot value {raw:?}")).into())
        })
        .collect()
}

fn cmd_generate(args: &Args) -> CliResult {
    args.reject_unknown(&["dataset", "n", "seed", "output"])?;
    let name = args.require("dataset")?.to_ascii_uppercase();
    let ds = Dataset::ALL
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| ArgError(format!("unknown dataset {name:?} (ecg|emg|gap|astro|eeg)")))?;
    let n: usize = args.require_parsed("n")?;
    let seed: u64 = args.parsed_or("seed", 1)?;
    let output = args.require("output")?;
    let series = ds.generate(n, seed);
    if output.ends_with(".bin") || output.ends_with(".f64") {
        io::save_binary(&series, output)?;
    } else {
        io::save_text(&series, output)?;
    }
    let s = series.summary();
    println!(
        "wrote {} points of {} to {output} (mean {:.4}, std {:.4})",
        s.len,
        ds.name(),
        s.mean,
        s.std_dev
    );
    Ok(())
}
