//! End-to-end tests of the `valmod` binary: generate → discover → sets →
//! discords → mp → profiles → join, plus error handling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> PathBuf {
    // CARGO_BIN_EXE_<name> is set by cargo for integration tests of a crate
    // with that binary target.
    PathBuf::from(env!("CARGO_BIN_EXE_valmod"))
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("binary runs")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("valmod_cli_test_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn generate_then_discover_pipeline() {
    let dir = tmp_dir("pipeline");
    let data = dir.join("ecg.csv");
    let gen = run(&[
        "generate",
        "--dataset",
        "ecg",
        "--n",
        "1500",
        "--seed",
        "3",
        "--output",
        data.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));
    assert!(stdout(&gen).contains("wrote 1500 points"));

    let disc = run(&[
        "discover",
        "--input",
        data.to_str().unwrap(),
        "--min",
        "32",
        "--max",
        "40",
        "--p",
        "8",
        "--top",
        "3",
    ]);
    assert!(disc.status.success(), "{}", stderr(&disc));
    let out = stdout(&disc);
    assert!(out.contains("variable-length motifs"), "{out}");
    assert!(out.contains("#1"), "{out}");

    let csv = run(&[
        "discover",
        "--input",
        data.to_str().unwrap(),
        "--min",
        "32",
        "--max",
        "36",
        "--csv",
    ]);
    assert!(csv.status.success());
    assert!(stdout(&csv).starts_with("rank,offset_a,offset_b,length,dist,norm_dist"));
}

#[test]
fn sets_and_discords_run() {
    let dir = tmp_dir("sets");
    let data = dir.join("gap.csv");
    assert!(run(&[
        "generate",
        "--dataset",
        "gap",
        "--n",
        "1500",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());
    let sets = run(&[
        "sets",
        "--input",
        data.to_str().unwrap(),
        "--min",
        "32",
        "--max",
        "38",
        "--k",
        "3",
        "--radius",
        "3.0",
    ]);
    assert!(sets.status.success(), "{}", stderr(&sets));
    assert!(stdout(&sets).contains("motif sets"));

    let discords = run(&[
        "discords",
        "--input",
        data.to_str().unwrap(),
        "--min",
        "32",
        "--max",
        "38",
        "--top",
        "2",
    ]);
    assert!(discords.status.success(), "{}", stderr(&discords));
    assert!(stdout(&discords).contains("variable-length discords"));
}

#[test]
fn mp_and_profiles_write_csv() {
    let dir = tmp_dir("mp");
    let data = dir.join("astro.bin");
    assert!(run(&[
        "generate",
        "--dataset",
        "astro",
        "--n",
        "1200",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());
    let mp_out = dir.join("profile.csv");
    let mp = run(&[
        "mp",
        "--input",
        data.to_str().unwrap(),
        "--length",
        "48",
        "--output",
        mp_out.to_str().unwrap(),
    ]);
    assert!(mp.status.success(), "{}", stderr(&mp));
    let content = std::fs::read_to_string(&mp_out).unwrap();
    assert!(content.starts_with("offset,nn_dist,nn_offset"));
    assert_eq!(content.lines().count(), 1200 - 48 + 1 + 1);

    let profs_dir = dir.join("profiles");
    let profs = run(&[
        "profiles",
        "--input",
        data.to_str().unwrap(),
        "--min",
        "40",
        "--max",
        "44",
        "--p",
        "5",
        "--output",
        profs_dir.to_str().unwrap(),
    ]);
    assert!(profs.status.success(), "{}", stderr(&profs));
    for l in 40..=44 {
        assert!(profs_dir.join(format!("mp_{l}.csv")).exists(), "missing mp_{l}.csv");
    }
}

#[test]
fn join_finds_cross_series_match() {
    let dir = tmp_dir("join");
    let a = dir.join("a.csv");
    let b = dir.join("b.csv");
    // Same generator/seed → identical series → perfect cross matches.
    for path in [&a, &b] {
        assert!(run(&[
            "generate",
            "--dataset",
            "eeg",
            "--n",
            "800",
            "--seed",
            "9",
            "--output",
            path.to_str().unwrap()
        ])
        .status
        .success());
    }
    let join = run(&[
        "join",
        "--input",
        a.to_str().unwrap(),
        "--other",
        b.to_str().unwrap(),
        "--length",
        "32",
        "--top",
        "2",
    ]);
    assert!(join.status.success(), "{}", stderr(&join));
    let out = stdout(&join);
    assert!(out.contains("cross-series matches"), "{out}");
    assert!(out.contains("dist    0.0000") || out.contains("0.000"), "{out}");
}

#[test]
fn helpful_errors_for_bad_usage() {
    let none = run(&[]);
    assert!(!none.status.success());
    assert!(stderr(&none).contains("USAGE"));

    let unknown = run(&["frobnicate"]);
    assert!(!unknown.status.success());
    assert!(stderr(&unknown).contains("unknown subcommand"));

    let typo = run(&["discover", "--imput", "x.csv", "--min", "8", "--max", "9"]);
    assert!(!typo.status.success());
    assert!(stderr(&typo).contains("unknown option --imput"));

    let missing = run(&["discover", "--min", "8", "--max", "9"]);
    assert!(!missing.status.success());
    assert!(stderr(&missing).contains("--input"));

    let no_file =
        run(&["discover", "--input", "/definitely/not/here.csv", "--min", "8", "--max", "9"]);
    assert!(!no_file.status.success());
}

#[test]
fn hint_suggests_the_heartbeat_band() {
    let dir = tmp_dir("hint");
    let data = dir.join("ecg.csv");
    assert!(run(&[
        "generate",
        "--dataset",
        "ecg",
        "--n",
        "4000",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());
    let hint =
        run(&["hint", "--input", data.to_str().unwrap(), "--top", "2", "--min-period", "16"]);
    assert!(hint.status.success(), "{}", stderr(&hint));
    let out = stdout(&hint);
    assert!(out.contains("suggested motif-length ranges"), "{out}");
    assert!(out.contains("--min"), "{out}");
}

#[test]
fn sets_with_k_zero_reports_an_error_not_a_panic() {
    let dir = tmp_dir("k_zero");
    let data = dir.join("gap.csv");
    assert!(run(&[
        "generate",
        "--dataset",
        "gap",
        "--n",
        "800",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());
    let out =
        run(&["sets", "--input", data.to_str().unwrap(), "--min", "32", "--max", "36", "--k", "0"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("pair tracking"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn serve_and_query_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = tmp_dir("serve");
    let data = dir.join("ecg.csv");
    assert!(run(&[
        "generate",
        "--dataset",
        "ecg",
        "--n",
        "1200",
        "--seed",
        "5",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());

    // Spawn the server on an ephemeral port and parse the announced addr.
    let mut server = Command::new(bin())
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().expect("server announces its address").unwrap();
    let addr = banner.strip_prefix("listening on ").expect("banner format").to_string();

    let query = |args: &[&str]| {
        let mut full = vec!["query", "--addr", addr.as_str()];
        full.extend_from_slice(args);
        run(&full)
    };

    let loaded = query(&["--cmd", "load", "--name", "ecg", "--input", data.to_str().unwrap()]);
    assert!(loaded.status.success(), "{}", stderr(&loaded));
    assert!(stdout(&loaded).contains("version 1, 1200 points"));

    let cold =
        query(&["--cmd", "motifs", "--name", "ecg", "--min", "32", "--max", "36", "--p", "5"]);
    assert!(cold.status.success(), "{}", stderr(&cold));
    assert!(stdout(&cold).contains("cached: false"), "{}", stdout(&cold));

    let warm =
        query(&["--cmd", "motifs", "--name", "ecg", "--min", "32", "--max", "36", "--p", "5"]);
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert!(stdout(&warm).contains("cached: true"), "{}", stdout(&warm));

    let stats = query(&["--cmd", "stats"]);
    assert!(stats.status.success());
    assert!(stdout(&stats).contains("\"hits\""), "{}", stdout(&stats));

    let shutdown = query(&["--cmd", "shutdown"]);
    assert!(shutdown.status.success(), "{}", stderr(&shutdown));
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server should exit cleanly after shutdown");
}

#[test]
fn serve_runs_with_zero_cache_budgets() {
    // Regression: `--cache-mb 0` / `--fragment-cache-mb 0` must mean
    // "disabled" — every query recomputes, nothing evict-loops, appends
    // and repeat queries keep working.
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = tmp_dir("serve_zero");
    let data = dir.join("ecg.csv");
    assert!(run(&[
        "generate",
        "--dataset",
        "ecg",
        "--n",
        "600",
        "--seed",
        "11",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());

    let mut server = Command::new(bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--cache-mb",
            "0",
            "--fragment-cache-mb",
            "0",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().expect("server announces its address").unwrap();
    let addr = banner.strip_prefix("listening on ").expect("banner format").to_string();

    let query = |args: &[&str]| {
        let mut full = vec!["query", "--addr", addr.as_str()];
        full.extend_from_slice(args);
        run(&full)
    };

    let loaded = query(&["--cmd", "load", "--name", "w", "--input", data.to_str().unwrap()]);
    assert!(loaded.status.success(), "{}", stderr(&loaded));

    for _ in 0..2 {
        let out = query(&["--cmd", "motifs", "--name", "w", "--min", "24", "--max", "28"]);
        assert!(out.status.success(), "{}", stderr(&out));
        assert!(
            stdout(&out).contains("cached: false"),
            "zero budget must never serve a cached result: {}",
            stdout(&out)
        );
    }

    let stats = query(&["--cmd", "stats"]);
    assert!(stats.status.success());
    let raw = stdout(&stats);
    assert!(raw.contains("\"used_bytes\":0"), "disabled caches must hold nothing: {raw}");

    let shutdown = query(&["--cmd", "shutdown"]);
    assert!(shutdown.status.success(), "{}", stderr(&shutdown));
    assert!(server.wait().expect("server exits").success());
}

#[test]
fn serve_survives_a_hard_kill_with_data_dir() {
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Stdio};

    let dir = tmp_dir("crash_restart");
    let data_dir = dir.join("store");
    let base = dir.join("base.csv");
    let extra_a = dir.join("extra_a.csv");
    let extra_b = dir.join("extra_b.csv");
    for (path, n, seed) in [(&base, "1000", "7"), (&extra_a, "80", "8"), (&extra_b, "60", "9")] {
        assert!(run(&[
            "generate",
            "--dataset",
            "ecg",
            "--n",
            n,
            "--seed",
            seed,
            "--output",
            path.to_str().unwrap()
        ])
        .status
        .success());
    }

    // Keeps the stdout pipe open for the server's lifetime — dropping it
    // would turn the server's own status prints into broken-pipe panics.
    type ServerLines = std::io::Lines<BufReader<std::process::ChildStdout>>;
    let spawn_server = || -> (Child, String, ServerLines) {
        let mut server = Command::new(bin())
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--data-dir",
                data_dir.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
        let banner = lines.next().expect("server announces its address").unwrap();
        let addr = banner.strip_prefix("listening on ").expect("banner format").to_string();
        (server, addr, lines)
    };
    // The query payload line carries a per-run "compute_ms"; only the
    // trailing "body" is expected to be stable across the restart.
    let body_of = |out: &str| -> String {
        let line = out.lines().find(|l| l.starts_with('{')).expect("payload line");
        let at = line.find("\"body\":").expect("payload has a body");
        line[at..].to_string()
    };

    // Generation 1: LOAD + two APPENDs (acknowledged → fsynced in the WAL),
    // one variable-length query for the reference answer... then SIGKILL.
    let (mut server, addr, _gen1_lines) = spawn_server();
    let query = |addr: &str, args: &[&str]| {
        let mut full = vec!["query", "--addr", addr];
        full.extend_from_slice(args);
        run(&full)
    };
    let loaded =
        query(&addr, &["--cmd", "load", "--name", "ecg", "--input", base.to_str().unwrap()]);
    assert!(loaded.status.success(), "{}", stderr(&loaded));
    for extra in [&extra_a, &extra_b] {
        let appended =
            query(&addr, &["--cmd", "append", "--name", "ecg", "--input", extra.to_str().unwrap()]);
        assert!(appended.status.success(), "{}", stderr(&appended));
    }
    let before = query(&addr, &["--cmd", "motifs", "--name", "ecg", "--min", "24", "--max", "36"]);
    assert!(before.status.success(), "{}", stderr(&before));
    server.kill().expect("hard kill");
    server.wait().expect("killed server reaped");

    // Generation 2: the appends were never snapshotted, so startup replays
    // them from the WAL — version, length, and query body all come back.
    let (mut server, addr, _gen2_lines) = spawn_server();
    let stats = query(&addr, &["--cmd", "stats"]);
    assert!(stats.status.success(), "{}", stderr(&stats));
    let stats_out = stdout(&stats);
    assert!(stats_out.contains("\"version\":3"), "{stats_out}");
    assert!(stats_out.contains("\"len\":1140"), "{stats_out}");
    let after = query(&addr, &["--cmd", "motifs", "--name", "ecg", "--min", "24", "--max", "36"]);
    assert!(after.status.success(), "{}", stderr(&after));
    assert_eq!(
        body_of(&stdout(&after)),
        body_of(&stdout(&before)),
        "recovered store must answer queries identically"
    );
    let shutdown = query(&addr, &["--cmd", "shutdown"]);
    assert!(shutdown.status.success(), "{}", stderr(&shutdown));
    assert!(server.wait().expect("server exits").success());
}

#[test]
fn cluster_run_matches_local_and_survives_a_worker_kill() {
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Stdio};

    let dir = tmp_dir("cluster");
    let data = dir.join("ecg.csv");
    assert!(run(&[
        "generate",
        "--dataset",
        "ecg",
        "--n",
        "1600",
        "--seed",
        "21",
        "--output",
        data.to_str().unwrap()
    ])
    .status
    .success());

    let spawn_worker = || -> (Child, String) {
        let mut worker = Command::new(bin())
            .args(["cluster-worker", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("worker spawns");
        let mut lines = BufReader::new(worker.stdout.take().unwrap()).lines();
        let banner = lines.next().expect("worker announces its address").unwrap();
        let addr = banner.strip_prefix("listening on ").expect("banner format").to_string();
        (worker, addr)
    };
    let job = |extra: &[&str]| -> Vec<String> {
        ["cluster-run", "--input", data.to_str().unwrap(), "--min", "32", "--max", "40", "--json"]
            .iter()
            .copied()
            .chain(extra.iter().copied())
            .map(String::from)
            .collect()
    };
    let run_job = |extra: &[&str]| -> Output {
        Command::new(bin()).args(job(extra)).output().expect("binary runs")
    };

    // The in-process reference body every distributed run must match
    // byte for byte (partition shape provably does not change the bits).
    let local = run_job(&["--local"]);
    assert!(local.status.success(), "{}", stderr(&local));
    let reference = stdout(&local);
    assert!(reference.starts_with('{'), "{reference}");

    // Healthy pool of two real worker processes.
    let (mut w1, addr1) = spawn_worker();
    let (mut w2, addr2) = spawn_worker();
    let pool = format!("{addr1},{addr2}");
    let healthy = run_job(&["--workers", &pool, "--parts", "6"]);
    assert!(healthy.status.success(), "{}", stderr(&healthy));
    assert_eq!(stdout(&healthy), reference, "distributed body must equal the local body");

    // Same pool, but worker 1 is SIGKILLed shortly after dispatch begins:
    // its shards must be redispatched to worker 2 and the job still
    // completes with the identical body.
    let coordinator = Command::new(bin())
        .args(job(&["--workers", &pool, "--parts", "6", "--timeout-ms", "5000"]))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    std::thread::sleep(std::time::Duration::from_millis(150));
    w1.kill().expect("hard kill");
    w1.wait().expect("killed worker reaped");
    let survived = coordinator.wait_with_output().expect("coordinator exits");
    assert!(survived.status.success(), "{}", String::from_utf8_lossy(&survived.stderr));
    assert_eq!(
        String::from_utf8_lossy(&survived.stdout),
        reference,
        "job must complete bit-identically with one worker killed mid-job"
    );

    w2.kill().expect("worker 2 stops");
    w2.wait().expect("worker 2 reaped");
}

#[test]
fn help_prints_usage() {
    let help = run(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("USAGE"));
}

#[test]
fn check_subcommand_runs_a_tiny_clean_sweep() {
    // A scaled-down `valmod check`: a handful of cases, fault matrix on —
    // enough to prove the wiring end to end without repeating the CI smoke.
    let out = run(&["check", "--seed", "42", "--cases", "10", "--probes", "8"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("differential: 10 cases"), "{text}");
    assert!(text.contains("verdict: CLEAN"), "{text}");
    assert!(text.contains("faults:"), "{text}");
}

#[test]
fn check_subcommand_rejects_unknown_flags() {
    let out = run(&["check", "--bogus", "1"]);
    assert!(!out.status.success());
}
