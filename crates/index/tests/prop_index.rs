//! Property-based tests for the spatial-index substrate.

use proptest::prelude::*;
use valmod_data::series::{euclidean, znormalize};
use valmod_index::hilbert::{hilbert_coords, hilbert_index};
use valmod_index::mbr::Mbr;
use valmod_index::paa::{paa, paa_dist};
use valmod_index::rtree::RTree;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hilbert_round_trips(coords in prop::collection::vec(0u32..256, 1..8)) {
        let bits = 8;
        let h = hilbert_index(&coords, bits);
        prop_assert_eq!(hilbert_coords(h, coords.len(), bits), coords);
    }

    #[test]
    fn paa_lower_bounds_euclidean_on_znorm(a in prop::collection::vec(-1e2..1e2f64, 16..64),
                                           b_seed in 0u64..1000, dims in 2usize..8) {
        let l = a.len();
        // Derive b deterministically from the seed at the same length.
        let b: Vec<f64> = (0..l).map(|i| ((i as u64 + b_seed) as f64 * 0.37).sin() * 10.0).collect();
        let za = znormalize(&a);
        let zb = znormalize(&b);
        let lb = paa_dist(&paa(&za, dims), &paa(&zb, dims), l);
        let d = euclidean(&za, &zb);
        prop_assert!(lb <= d + 1e-9, "PAA {} exceeds ED {}", lb, d);
    }

    #[test]
    fn mbr_mindist_lower_bounds_point_pairs(pts_a in prop::collection::vec((-1e2..1e2f64, -1e2..1e2f64), 1..10),
                                            pts_b in prop::collection::vec((-1e2..1e2f64, -1e2..1e2f64), 1..10)) {
        let to_vecs = |pts: &[(f64, f64)]| -> Vec<Vec<f64>> {
            pts.iter().map(|&(x, y)| vec![x, y]).collect()
        };
        let (va, vb) = (to_vecs(&pts_a), to_vecs(&pts_b));
        let ma = Mbr::from_points(va.iter().map(|p| p.as_slice()));
        let mb = Mbr::from_points(vb.iter().map(|p| p.as_slice()));
        let lb = ma.min_dist(&mb);
        for pa in &va {
            for pb in &vb {
                let d = euclidean(pa, pb);
                prop_assert!(lb <= d + 1e-9);
            }
        }
    }

    #[test]
    fn rtree_covers_every_point(pts in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64), 1..200),
                                group in 1usize..12, fanout in 2usize..10) {
        let points: Vec<Vec<f64>> = pts.iter().map(|&(x, y, z)| vec![x, y, z]).collect();
        let tree = RTree::bulk_load(&points, group, fanout);
        prop_assert_eq!(tree.len(), points.len());
        let mut covered = vec![false; points.len()];
        for leaf in tree.leaves() {
            let node = tree.node(leaf);
            for i in node.items.clone() {
                prop_assert!(node.mbr.contains(&points[i]));
                prop_assert!(!covered[i], "point {} in two leaves", i);
                covered[i] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }
}
