//! A bulk-loaded Hilbert R-tree over groups of points.
//!
//! QuickMotif's layout: every subsequence becomes a PAA point; runs of `B`
//! *consecutive* subsequences (which overlap heavily and are therefore
//! similar) form the leaf MBRs; leaves are then packed bottom-up in Hilbert
//! order of their centres, `fanout` children per internal node.

use crate::hilbert::{hilbert_index, quantize};
use crate::mbr::Mbr;

/// Node identifier inside an [`RTree`].
pub type NodeId = usize;

/// One node of the tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Bounding rectangle of everything below this node.
    pub mbr: Mbr,
    /// Children: node ids for internal nodes, empty for leaves.
    pub children: Vec<NodeId>,
    /// For leaves: the contiguous range of item (point) ids covered.
    pub items: std::ops::Range<usize>,
}

impl Node {
    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A static, bulk-loaded R-tree.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: NodeId,
    dims: usize,
    num_items: usize,
}

impl RTree {
    /// Bulk-loads a tree over `points` (all of equal dimensionality):
    /// consecutive runs of `group` points form the leaves; internal levels
    /// pack `fanout` children per node in Hilbert order of child centres.
    ///
    /// # Panics
    /// Panics on empty input, `group == 0`, or `fanout < 2`.
    pub fn bulk_load(points: &[Vec<f64>], group: usize, fanout: usize) -> Self {
        assert!(!points.is_empty(), "cannot build an R-tree over nothing");
        assert!(group > 0, "leaf group size must be positive");
        assert!(fanout >= 2, "fanout must be at least 2");
        let dims = points[0].len();
        assert!(points.iter().all(|p| p.len() == dims), "inconsistent dimensionality");

        let mut nodes: Vec<Node> = Vec::new();
        // Level 0: leaves over consecutive runs.
        let mut level: Vec<NodeId> = Vec::new();
        let mut start = 0usize;
        while start < points.len() {
            let end = (start + group).min(points.len());
            let mbr = Mbr::from_points(points[start..end].iter().map(|p| p.as_slice()));
            nodes.push(Node { mbr, children: Vec::new(), items: start..end });
            level.push(nodes.len() - 1);
            start = end;
        }
        // Hilbert-sort the leaves by centre, then pack upper levels.
        sort_by_hilbert(&mut level, &nodes);
        while level.len() > 1 {
            let mut next: Vec<NodeId> = Vec::new();
            for chunk in level.chunks(fanout) {
                let mut mbr = Mbr::empty(dims);
                for &c in chunk {
                    mbr.expand_mbr(&nodes[c].mbr);
                }
                nodes.push(Node { mbr, children: chunk.to_vec(), items: 0..0 });
                next.push(nodes.len() - 1);
            }
            sort_by_hilbert(&mut next, &nodes);
            level = next;
        }
        let root = level[0];
        RTree { nodes, root, dims, num_items: points.len() }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Accesses a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of dimensions of the indexed points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_items
    }

    /// Whether the tree indexes no points (never true — construction panics
    /// on empty input — but kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// Total number of nodes (diagnostics).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all leaf node ids.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(move |&id| self.nodes[id].is_leaf())
    }
}

/// Sorts node ids by the Hilbert index of their MBR centres (16 bits per
/// dimension when it fits in the 128-bit key, coarser otherwise).
fn sort_by_hilbert(ids: &mut [NodeId], nodes: &[Node]) {
    if ids.len() <= 1 {
        return;
    }
    let dims = nodes[ids[0]].mbr.dims();
    let bits = (128 / dims.max(1)).clamp(1, 16) as u32;
    // Global extent of the centres, per dimension.
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    let centers: Vec<Vec<f64>> = ids.iter().map(|&id| nodes[id].mbr.center()).collect();
    for c in &centers {
        for i in 0..dims {
            lo[i] = lo[i].min(c[i]);
            hi[i] = hi[i].max(c[i]);
        }
    }
    let mut keyed: Vec<(u128, NodeId)> = centers
        .iter()
        .zip(ids.iter())
        .map(|(c, &id)| {
            let coords: Vec<u32> = (0..dims).map(|i| quantize(c[i], lo[i], hi[i], bits)).collect();
            (hilbert_index(&coords, bits), id)
        })
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    for (slot, (_, id)) in ids.iter_mut().zip(keyed) {
        *slot = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::rng::Xoshiro256;

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n).map(|_| (0..dims).map(|_| rng.uniform(-10.0, 10.0)).collect()).collect()
    }

    #[test]
    fn every_point_is_inside_its_leaf_and_all_ancestors() {
        let pts = random_points(500, 4, 1);
        let tree = RTree::bulk_load(&pts, 8, 6);
        // Leaf coverage.
        let mut covered = vec![false; pts.len()];
        for leaf in tree.leaves() {
            let node = tree.node(leaf);
            for i in node.items.clone() {
                assert!(node.mbr.contains(&pts[i]), "point {i} outside its leaf");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every point must appear in exactly one leaf");
        // Root covers everything.
        let root = tree.node(tree.root());
        for p in &pts {
            assert!(root.mbr.contains(p));
        }
    }

    #[test]
    fn parents_contain_children() {
        let pts = random_points(300, 3, 2);
        let tree = RTree::bulk_load(&pts, 5, 4);
        for id in 0..tree.node_count() {
            let node = tree.node(id);
            for &c in &node.children {
                let child = tree.node(c);
                for d in 0..tree.dims() {
                    assert!(node.mbr.lo[d] <= child.mbr.lo[d]);
                    assert!(node.mbr.hi[d] >= child.mbr.hi[d]);
                }
            }
        }
    }

    #[test]
    fn tree_height_is_logarithmic() {
        let pts = random_points(1000, 2, 3);
        let tree = RTree::bulk_load(&pts, 10, 10);
        // 100 leaves, fanout 10 ⇒ ~3 levels ⇒ ~111 nodes.
        assert!(tree.node_count() < 150, "node count {}", tree.node_count());
    }

    #[test]
    fn single_point_tree() {
        let tree = RTree::bulk_load(&[vec![1.0, 2.0]], 4, 4);
        let root = tree.node(tree.root());
        assert!(root.is_leaf());
        assert_eq!(root.items, 0..1);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn mindist_pruning_is_admissible() {
        // For any two leaves, the MBR mindist must lower-bound the distance
        // between any pair of their points.
        let pts = random_points(200, 3, 5);
        let tree = RTree::bulk_load(&pts, 7, 5);
        let leaves: Vec<NodeId> = tree.leaves().collect();
        for &a in &leaves {
            for &b in &leaves {
                let lb = tree.node(a).mbr.min_dist(&tree.node(b).mbr);
                for i in tree.node(a).items.clone() {
                    for j in tree.node(b).items.clone() {
                        let d: f64 = pts[i]
                            .iter()
                            .zip(&pts[j])
                            .map(|(x, y)| (x - y) * (x - y))
                            .sum::<f64>()
                            .sqrt();
                        assert!(lb <= d + 1e-9);
                    }
                }
            }
        }
    }
}
