//! # valmod-index
//!
//! Spatial-index substrate for the QuickMotif baseline (Li et al., ICDE
//! 2015; the fixed-length comparator in the VALMOD evaluation): PAA
//! summaries of z-normalised subsequences, a d-dimensional Hilbert curve
//! (Skilling's transform), axis-aligned MBRs with the admissible `MINDIST`
//! metric, and a bulk-loaded Hilbert R-tree.
//!
//! ## Quick example
//!
//! ```
//! use valmod_index::paa::{paa, paa_dist};
//! use valmod_index::rtree::RTree;
//!
//! let points: Vec<Vec<f64>> = (0..100)
//!     .map(|i| paa(&(0..32).map(|j| ((i * j) as f64 * 0.01).sin()).collect::<Vec<_>>(), 4))
//!     .collect();
//! let tree = RTree::bulk_load(&points, 8, 8);
//! assert_eq!(tree.len(), 100);
//! // PAA distance lower-bounds the Euclidean distance of the length-32 originals.
//! let lb = paa_dist(&points[0], &points[50], 32);
//! assert!(lb >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hilbert;
pub mod mbr;
pub mod paa;
pub mod rtree;

pub use hilbert::{hilbert_coords, hilbert_index};
pub use mbr::Mbr;
pub use paa::{paa, paa_dist, paa_znorm};
pub use rtree::{Node, NodeId, RTree};
