//! Minimum bounding rectangles in d dimensions, with the `MINDIST` metric
//! used for admissible R-tree pruning.

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Per-dimension lower bounds.
    pub lo: Vec<f64>,
    /// Per-dimension upper bounds.
    pub hi: Vec<f64>,
}

impl Mbr {
    /// An "empty" MBR that unions as the identity.
    pub fn empty(dims: usize) -> Self {
        Mbr { lo: vec![f64::INFINITY; dims], hi: vec![f64::NEG_INFINITY; dims] }
    }

    /// The MBR of a single point.
    pub fn from_point(point: &[f64]) -> Self {
        Mbr { lo: point.to_vec(), hi: point.to_vec() }
    }

    /// The MBR of a set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points<'a>(mut points: impl Iterator<Item = &'a [f64]>) -> Self {
        let first = points.next().expect("MBR of an empty point set");
        let mut mbr = Mbr::from_point(first);
        for p in points {
            mbr.expand_point(p);
        }
        mbr
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Whether the MBR is the empty identity.
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Grows the MBR to cover `point`.
    pub fn expand_point(&mut self, point: &[f64]) {
        debug_assert_eq!(point.len(), self.dims());
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(point) {
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }

    /// Grows the MBR to cover another MBR.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dims(), self.dims());
        for i in 0..self.dims() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Whether the MBR contains `point` (inclusive).
    pub fn contains(&self, point: &[f64]) -> bool {
        self.lo.iter().zip(&self.hi).zip(point).all(|((l, h), v)| *l <= *v && *v <= *h)
    }

    /// The geometric centre.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| 0.5 * (l + h)).collect()
    }

    /// `MINDIST` between two MBRs: the smallest possible Euclidean distance
    /// between any point of one and any point of the other. Zero when they
    /// overlap. This lower-bounds the distance between any contained points,
    /// which is what makes best-first pair pruning exact.
    pub fn min_dist(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(other.dims(), self.dims());
        let mut acc = 0.0;
        for i in 0..self.dims() {
            let gap = if self.hi[i] < other.lo[i] {
                other.lo[i] - self.hi[i]
            } else if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc.sqrt()
    }

    /// `MINDIST` between this MBR and a point.
    pub fn min_dist_point(&self, point: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((&lo, &hi), &p) in self.lo.iter().zip(&self.hi).zip(point) {
            let gap = if p < lo {
                lo - p
            } else if p > hi {
                p - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_covers_all() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, 1.0], vec![-1.0, 3.0]];
        let mbr = Mbr::from_points(pts.iter().map(|p| p.as_slice()));
        assert_eq!(mbr.lo, vec![-1.0, 1.0]);
        assert_eq!(mbr.hi, vec![2.0, 5.0]);
        for p in &pts {
            assert!(mbr.contains(p));
        }
    }

    #[test]
    fn min_dist_is_zero_when_overlapping() {
        let a = Mbr { lo: vec![0.0, 0.0], hi: vec![2.0, 2.0] };
        let b = Mbr { lo: vec![1.0, 1.0], hi: vec![3.0, 3.0] };
        assert_eq!(a.min_dist(&b), 0.0);
        assert_eq!(a.min_dist(&a), 0.0);
    }

    #[test]
    fn min_dist_matches_hand_computation() {
        let a = Mbr { lo: vec![0.0, 0.0], hi: vec![1.0, 1.0] };
        let b = Mbr { lo: vec![4.0, 5.0], hi: vec![6.0, 7.0] };
        // Gaps: 3 in x, 4 in y → 5.
        assert!((a.min_dist(&b) - 5.0).abs() < 1e-12);
        assert!((b.min_dist(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_dist_lower_bounds_contained_points() {
        let a = Mbr::from_points([vec![0.0, 0.0], vec![1.0, 2.0]].iter().map(|p| p.as_slice()));
        let b = Mbr::from_points([vec![5.0, 6.0], vec![4.0, 8.0]].iter().map(|p| p.as_slice()));
        let d_pts = ((5.0f64 - 1.0).powi(2) + (6.0f64 - 2.0).powi(2)).sqrt();
        assert!(a.min_dist(&b) <= d_pts);
    }

    #[test]
    fn point_min_dist() {
        let a = Mbr { lo: vec![0.0, 0.0], hi: vec![2.0, 2.0] };
        assert_eq!(a.min_dist_point(&[1.0, 1.0]), 0.0);
        assert!((a.min_dist_point(&[5.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mbr_unions_as_identity() {
        let mut e = Mbr::empty(2);
        assert!(e.is_empty());
        e.expand_point(&[1.0, -1.0]);
        assert!(!e.is_empty());
        assert_eq!(e.lo, vec![1.0, -1.0]);
        assert_eq!(e.hi, vec![1.0, -1.0]);
    }

    #[test]
    fn center_is_midpoint() {
        let a = Mbr { lo: vec![0.0, 2.0], hi: vec![4.0, 6.0] };
        assert_eq!(a.center(), vec![2.0, 4.0]);
    }
}
