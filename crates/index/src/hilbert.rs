//! A d-dimensional Hilbert curve (Skilling's 2004 transform).
//!
//! QuickMotif packs its R-tree in Hilbert order, which keeps spatially close
//! PAA summaries in nearby tree nodes. The implementation follows John
//! Skilling, *"Programming the Hilbert curve"* (AIP Conf. Proc. 707), which
//! converts axis coordinates to a transposed Hilbert code in place; the
//! transposed code is then bit-interleaved into a single `u128` key.
//!
//! Constraint: `dims · bits ≤ 128`.

/// Converts axis coordinates (each `< 2^bits`) to a Hilbert-curve index.
///
/// # Panics
/// Panics if `dims·bits > 128`, `bits` is 0 or > 32, or a coordinate
/// overflows `bits`.
pub fn hilbert_index(coords: &[u32], bits: u32) -> u128 {
    let dims = coords.len();
    assert!((1..=32).contains(&bits), "bits must be in [1, 32]");
    assert!(dims as u32 * bits <= 128, "dims·bits must fit in 128 bits");
    for &c in coords {
        assert!(bits == 32 || c < (1u32 << bits), "coordinate {c} overflows {bits} bits");
    }
    let x = axes_to_transpose(coords, bits);
    interleave(&x, bits)
}

/// Inverse mapping: Hilbert index back to axis coordinates.
pub fn hilbert_coords(index: u128, dims: usize, bits: u32) -> Vec<u32> {
    assert!((1..=32).contains(&bits));
    assert!(dims as u32 * bits <= 128);
    let x = deinterleave(index, dims, bits);
    transpose_to_axes(&x, bits)
}

/// Skilling's forward transform: Gray-decode and undo the rotations, turning
/// axis coordinates into the "transposed" Hilbert representation.
fn axes_to_transpose(coords: &[u32], bits: u32) -> Vec<u32> {
    let n = coords.len();
    let mut x = coords.to_vec();
    if n <= 1 {
        return x;
    }
    let m = 1u32 << (bits - 1);
    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q.wrapping_sub(1);
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
    x
}

/// Skilling's inverse transform.
fn transpose_to_axes(x: &[u32], bits: u32) -> Vec<u32> {
    let n = x.len();
    let mut x = x.to_vec();
    if n <= 1 {
        return x;
    }
    let m = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != m {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x
}

/// Interleaves the transposed code into a single index: bit `b` of axis `i`
/// becomes bit `(b·dims + (dims−1−i))` of the output, most significant bit
/// first.
fn interleave(x: &[u32], bits: u32) -> u128 {
    let mut out: u128 = 0;
    for b in (0..bits).rev() {
        for &xi in x.iter() {
            out = (out << 1) | ((xi >> b) & 1) as u128;
        }
    }
    out
}

fn deinterleave(index: u128, dims: usize, bits: u32) -> Vec<u32> {
    let mut x = vec![0u32; dims];
    let total = dims as u32 * bits;
    for pos in 0..total {
        let bit = ((index >> (total - 1 - pos)) & 1) as u32;
        let axis = (pos as usize) % dims;
        x[axis] = (x[axis] << 1) | bit;
    }
    x
}

/// Quantises a float in `[lo, hi]` onto the `bits`-bit integer grid
/// (clamping out-of-range values).
pub fn quantize(value: f64, lo: f64, hi: f64, bits: u32) -> u32 {
    let cells = (1u64 << bits) as f64;
    if hi <= lo {
        return 0;
    }
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * cells).floor() as u64).min((1u64 << bits) - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_2d() {
        for x in 0..16u32 {
            for y in 0..16u32 {
                let h = hilbert_index(&[x, y], 4);
                assert_eq!(hilbert_coords(h, 2, 4), vec![x, y]);
            }
        }
    }

    #[test]
    fn round_trip_higher_dims() {
        for dims in [3usize, 4, 8] {
            for seed in 0..200u32 {
                let coords: Vec<u32> = (0..dims)
                    .map(|i| (seed.wrapping_mul(2654435761).rotate_left(i as u32 * 7)) & 0xF)
                    .collect();
                let h = hilbert_index(&coords, 4);
                assert_eq!(hilbert_coords(h, dims, 4), coords, "dims={dims} seed={seed}");
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_2d() {
        let mut seen = vec![false; 256];
        for x in 0..16u32 {
            for y in 0..16u32 {
                let h = hilbert_index(&[x, y], 4) as usize;
                assert!(h < 256);
                assert!(!seen[h], "index {h} visited twice");
                seen[h] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        // The defining Hilbert property: successive curve positions differ
        // by exactly 1 in exactly one coordinate.
        for h in 0..255u128 {
            let a = hilbert_coords(h, 2, 4);
            let b = hilbert_coords(h + 1, 2, 4);
            let manhattan: u32 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
            assert_eq!(manhattan, 1, "h={h}: {a:?} -> {b:?}");
        }
    }

    #[test]
    fn one_dimension_is_identity() {
        for v in 0..32u32 {
            assert_eq!(hilbert_index(&[v], 5), v as u128);
        }
    }

    #[test]
    fn quantize_maps_range_to_grid() {
        assert_eq!(quantize(-1.0, -1.0, 1.0, 4), 0);
        assert_eq!(quantize(1.0, -1.0, 1.0, 4), 15);
        assert_eq!(quantize(0.0, -1.0, 1.0, 4), 8);
        assert_eq!(quantize(99.0, -1.0, 1.0, 4), 15); // clamped
        assert_eq!(quantize(0.5, 1.0, 1.0, 4), 0); // degenerate range
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_coordinate_is_rejected() {
        hilbert_index(&[16, 0], 4);
    }
}
