//! Piecewise Aggregate Approximation (PAA) of z-normalised subsequences.
//!
//! QuickMotif (Li et al., ICDE 2015 — the paper's fixed-length baseline)
//! summarises every z-normalised subsequence by `d` segment means. The PAA
//! distance, scaled by `sqrt(ℓ/d)`, lower-bounds the z-normalised Euclidean
//! distance — the property that makes R-tree pruning admissible.

use valmod_data::series::znormalize;

/// PAA of an already z-normalised (or otherwise prepared) vector: `dims`
/// segment means. Handles lengths not divisible by `dims` by weighting
/// boundary samples fractionally, so every sample contributes exactly once.
pub fn paa(values: &[f64], dims: usize) -> Vec<f64> {
    assert!(dims > 0, "PAA needs at least one segment");
    let l = values.len();
    assert!(l >= dims, "PAA dimensionality {dims} exceeds length {l}");
    let seg = l as f64 / dims as f64;
    let mut out = Vec::with_capacity(dims);
    for k in 0..dims {
        let start = k as f64 * seg;
        let end = start + seg;
        let mut acc = 0.0;
        let mut idx = start.floor() as usize;
        let mut pos = start;
        while pos < end - 1e-12 {
            let next = ((idx + 1) as f64).min(end);
            acc += values[idx.min(l - 1)] * (next - pos);
            pos = next;
            idx += 1;
        }
        out.push(acc / seg);
    }
    out
}

/// PAA of the z-normalisation of `sub` (the QuickMotif summary).
pub fn paa_znorm(sub: &[f64], dims: usize) -> Vec<f64> {
    paa(&znormalize(sub), dims)
}

/// The PAA lower-bound distance: `sqrt(ℓ/d · Σ (aₖ − bₖ)²)` — admissible for
/// the Euclidean distance of the underlying length-`ℓ` vectors.
pub fn paa_dist(a: &[f64], b: &[f64], l: usize) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (l as f64 / d as f64 * sum).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_data::series::euclidean;

    #[test]
    fn paa_of_constant_is_constant() {
        let p = paa(&[3.0; 12], 4);
        assert_eq!(p, vec![3.0; 4]);
    }

    #[test]
    fn paa_exact_division_is_segment_means() {
        let p = paa(&[1.0, 3.0, 5.0, 7.0, 9.0, 11.0], 3);
        assert_eq!(p, vec![2.0, 6.0, 10.0]);
    }

    #[test]
    fn paa_fractional_division_preserves_total_mass() {
        // Σ paa·seg must equal Σ values for any length/dims combination.
        let values: Vec<f64> = (0..17).map(|i| (i as f64 * 0.7).sin()).collect();
        for dims in [2usize, 3, 5, 7, 16] {
            let p = paa(&values, dims);
            let mass: f64 = p.iter().sum::<f64>() * (values.len() as f64 / dims as f64);
            let total: f64 = values.iter().sum();
            assert!((mass - total).abs() < 1e-9, "dims={dims}: {mass} vs {total}");
        }
    }

    #[test]
    fn paa_dist_lower_bounds_euclidean() {
        let series = random_walk(500, 3);
        let l = 64;
        for (i, j) in [(0usize, 100usize), (50, 300), (200, 400), (10, 430)] {
            let a = znormalize(&series[i..i + l]);
            let b = znormalize(&series[j..j + l]);
            let true_d = euclidean(&a, &b);
            for dims in [4usize, 8, 16] {
                let lb = paa_dist(&paa(&a, dims), &paa(&b, dims), l);
                assert!(lb <= true_d + 1e-9, "dims={dims} ({i},{j}): PAA {lb} exceeds ED {true_d}");
            }
        }
    }

    #[test]
    fn higher_dimensionality_tightens_the_bound() {
        let series = random_walk(300, 9);
        let l = 64;
        let a = znormalize(&series[0..l]);
        let b = znormalize(&series[150..150 + l]);
        let lb4 = paa_dist(&paa(&a, 4), &paa(&b, 4), l);
        let lb16 = paa_dist(&paa(&a, 16), &paa(&b, 16), l);
        assert!(lb16 >= lb4 - 1e-9, "finer PAA must not loosen the bound");
    }

    #[test]
    fn full_dimensionality_is_exact() {
        let a = [0.5, -1.0, 2.0, -1.5];
        let b = [1.0, 0.0, -2.0, 1.0];
        let d = euclidean(&a, &b);
        let lb = paa_dist(&paa(&a, 4), &paa(&b, 4), 4);
        assert!((d - lb).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn paa_rejects_too_many_dims() {
        paa(&[1.0, 2.0], 3);
    }
}
