//! Cross-crate differential tests: the paper's competitors (MOEN-style
//! enumeration, QuickMotif) against VALMOD itself over the same length
//! ranges. All three are exact algorithms, so their per-length motif
//! distances must agree to rounding; only tie-break indices may differ.

use std::time::Duration;

use valmod_baselines::{moen, quick_motif_range_with_deadline, QuickMotifConfig};
use valmod_core::{Valmod, ValmodConfig};
use valmod_data::generators::{plant_motif, random_walk, sine_mixture};
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn valmod_dists(ps: &ProfiledSeries, l_min: usize, l_max: usize) -> Vec<Option<f64>> {
    Valmod::from_config(ValmodConfig::new(l_min, l_max).with_p(5))
        .run_on(ps)
        .unwrap()
        .per_length
        .iter()
        .map(|r| r.motif.as_ref().map(|m| m.dist))
        .collect()
}

fn assert_agree(name: &str, got: &[Option<f64>], want: &[Option<f64>], l_min: usize) {
    assert_eq!(got.len(), want.len(), "{name}: length count");
    for (k, (g, w)) in got.iter().zip(want).enumerate() {
        match (g, w) {
            (Some(g), Some(w)) => {
                assert!((g - w).abs() < 1e-6, "{name} l={}: {g} vs valmod {w}", l_min + k)
            }
            (None, None) => {}
            other => panic!("{name} l={}: presence mismatch {other:?}", l_min + k),
        }
    }
}

#[test]
fn moen_agrees_with_valmod_across_datasets() {
    for (series, l_min, l_max) in [
        (random_walk(320, 71), 16, 28),
        (sine_mixture(300, &[(0.03, 1.0)], 0.05, 73), 18, 26),
        (plant_motif(900, 40, 3, 0.02, 75).0, 36, 44),
    ] {
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let want = valmod_dists(&ps, l_min, l_max);
        let out = moen(&ps, l_min, l_max, ExclusionPolicy::HALF, Duration::MAX).unwrap();
        assert!(!out.truncated);
        let got: Vec<Option<f64>> = out.motifs.iter().map(|m| m.as_ref().map(|p| p.dist)).collect();
        assert_agree("moen", &got, &want, l_min);
    }
}

#[test]
fn quick_motif_agrees_with_valmod_across_datasets() {
    let cfg = QuickMotifConfig::default();
    for (series, l_min, l_max) in
        [(random_walk(280, 81), 14, 22), (plant_motif(800, 32, 2, 0.01, 83).0, 28, 36)]
    {
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let want = valmod_dists(&ps, l_min, l_max);
        let (motifs, truncated) = quick_motif_range_with_deadline(
            &ps,
            l_min,
            l_max,
            ExclusionPolicy::HALF,
            &cfg,
            Duration::MAX,
        )
        .unwrap();
        assert!(!truncated);
        let got: Vec<Option<f64>> = motifs.iter().map(|m| m.as_ref().map(|p| p.dist)).collect();
        assert_agree("quick_motif", &got, &want, l_min);
    }
}

#[test]
fn all_three_agree_on_a_flat_plateau_edge_case() {
    // A plateau inside noise: flat-vs-flat pairs win at distance 0 and all
    // exact methods must agree on that.
    let mut values = random_walk(400, 91);
    for v in &mut values[150..230] {
        *v = 1.0;
    }
    let ps = ProfiledSeries::from_values(&values).unwrap();
    let (l_min, l_max) = (20, 26);
    let want = valmod_dists(&ps, l_min, l_max);
    let moen_out = moen(&ps, l_min, l_max, ExclusionPolicy::HALF, Duration::MAX).unwrap();
    let moen_dists: Vec<Option<f64>> =
        moen_out.motifs.iter().map(|m| m.as_ref().map(|p| p.dist)).collect();
    assert_agree("moen", &moen_dists, &want, l_min);
    let (qm, _) = quick_motif_range_with_deadline(
        &ps,
        l_min,
        l_max,
        ExclusionPolicy::HALF,
        &QuickMotifConfig::default(),
        Duration::MAX,
    )
    .unwrap();
    let qm_dists: Vec<Option<f64>> = qm.iter().map(|m| m.as_ref().map(|p| p.dist)).collect();
    assert_agree("quick_motif", &qm_dists, &want, l_min);
}
