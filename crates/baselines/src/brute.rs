//! Brute-force motif discovery — the `O(n²ℓ)` oracle every other algorithm
//! is tested against.

use valmod_data::error::Result;
use valmod_mp::distance::zdist_naive;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::motif::MotifPair;
use valmod_mp::ProfiledSeries;

/// Finds the exact motif pair of one length by comparing every non-trivial
/// pair of subsequences.
pub fn brute_force_motif(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
) -> Result<Option<MotifPair>> {
    let ndp = ps.require_pairs(l)?;
    let t = ps.centered();
    let radius = policy.radius(l);
    let mut best: Option<MotifPair> = None;
    for i in 0..ndp {
        for j in (i + radius)..ndp {
            let d = zdist_naive(&t[i..i + l], &t[j..j + l]);
            if best.as_ref().is_none_or(|b| d < b.dist) {
                best = Some(MotifPair::new(i, j, l, d));
            }
        }
    }
    Ok(best)
}

/// Brute-force answer to Problem 1: the motif pair of every length in the
/// range.
pub fn brute_force_range(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
) -> Result<Vec<Option<MotifPair>>> {
    valmod_core::validate_length_range(ps.len(), l_min, l_max)?;
    (l_min..=l_max).map(|l| brute_force_motif(ps, l, policy)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::{plant_motif, random_walk};
    use valmod_mp::stomp::stomp;

    #[test]
    fn agrees_with_stomp() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 3)).unwrap();
        for l in [10usize, 16, 25] {
            let brute = brute_force_motif(&ps, l, ExclusionPolicy::HALF).unwrap().unwrap();
            let (_, _, d) = stomp(&ps, l, ExclusionPolicy::HALF).unwrap().motif_pair().unwrap();
            assert!((brute.dist - d).abs() < 1e-6, "l={l}");
        }
    }

    #[test]
    fn finds_planted_pair() {
        let (series, planted) = plant_motif(800, 32, 2, 0.001, 11);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let m = brute_force_motif(&ps, 32, ExclusionPolicy::HALF).unwrap().unwrap();
        assert!(planted.offsets.iter().any(|&o| m.a.abs_diff(o) <= 2));
        assert!(planted.offsets.iter().any(|&o| m.b.abs_diff(o) <= 2));
    }

    #[test]
    fn range_returns_one_result_per_length() {
        let ps = ProfiledSeries::from_values(&random_walk(120, 5)).unwrap();
        let all = brute_force_range(&ps, 8, 12, ExclusionPolicy::HALF).unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|m| m.is_some()));
    }
}
