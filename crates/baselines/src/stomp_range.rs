//! STOMP adapted to a length range (the paper's §6.1 adaptation of the
//! single-length state of the art): run the full `O(n²)` profile once per
//! length. This is the comparator whose cost VALMOD's `ComputeSubMP`
//! replaces with a linear pass.

use valmod_data::error::Result;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::motif::MotifPair;
use valmod_mp::stomp::stomp;
use valmod_mp::ProfiledSeries;

/// The motif pair of every length in `[l_min, l_max]`, each obtained by an
/// independent STOMP run.
pub fn stomp_range(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
) -> Result<Vec<Option<MotifPair>>> {
    (l_min..=l_max)
        .map(|l| {
            let profile = stomp(ps, l, policy)?;
            Ok(profile.motif_pair().map(|(a, b, d)| MotifPair::new(a, b, l, d)))
        })
        .collect()
}

/// Like [`stomp_range`] but aborts once `deadline` has elapsed, returning
/// what was computed so far and a truncation flag — the bench harness uses
/// this to reproduce the paper's "failed to finish within a reasonable
/// amount of time" entries without hanging the suite.
pub fn stomp_range_with_deadline(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
    deadline: std::time::Duration,
) -> Result<(Vec<Option<MotifPair>>, bool)> {
    let start = std::time::Instant::now();
    let mut out = Vec::with_capacity(l_max - l_min + 1);
    for l in l_min..=l_max {
        if start.elapsed() > deadline {
            return Ok((out, true));
        }
        let profile = stomp(ps, l, policy)?;
        out.push(profile.motif_pair().map(|(a, b, d)| MotifPair::new(a, b, l, d)));
    }
    Ok((out, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_range;
    use valmod_data::generators::random_walk;

    #[test]
    fn matches_brute_force_over_a_range() {
        let ps = ProfiledSeries::from_values(&random_walk(150, 7)).unwrap();
        let fast = stomp_range(&ps, 8, 14, ExclusionPolicy::HALF).unwrap();
        let slow = brute_force_range(&ps, 8, 14, ExclusionPolicy::HALF).unwrap();
        for (f, s) in fast.iter().zip(&slow) {
            match (f, s) {
                (Some(f), Some(s)) => assert!((f.dist - s.dist).abs() < 1e-6),
                (None, None) => {}
                other => panic!("presence mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn deadline_truncates() {
        let ps = ProfiledSeries::from_values(&random_walk(2000, 9)).unwrap();
        let (out, truncated) = stomp_range_with_deadline(
            &ps,
            64,
            256,
            ExclusionPolicy::HALF,
            std::time::Duration::from_millis(1),
        )
        .unwrap();
        assert!(truncated);
        assert!(out.len() < 193);
    }
}
