//! STOMP adapted to a length range (the paper's §6.1 adaptation of the
//! single-length state of the art): run the full `O(n²)` profile once per
//! length. This is the comparator whose cost VALMOD's `ComputeSubMP`
//! replaces with a linear pass.

use valmod_data::error::Result;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::matrix_profile::MatrixProfile;
use valmod_mp::motif::MotifPair;
use valmod_mp::parallel::stomp_parallel;
use valmod_mp::stomp::stomp;
use valmod_mp::ProfiledSeries;

/// One profile at length `l`: the sequential row streamer for one thread,
/// the chunked kernel otherwise (0 = all available cores). Keeps the
/// baseline comparable to VALMOD at matching thread counts.
fn profile_at(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    threads: usize,
) -> Result<MatrixProfile> {
    if threads == 1 {
        stomp(ps, l, policy)
    } else {
        stomp_parallel(ps, l, policy, threads)
    }
}

/// The motif pair of every length in `[l_min, l_max]`, each obtained by an
/// independent STOMP run with `threads` workers (1 = sequential).
pub fn stomp_range(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
    threads: usize,
) -> Result<Vec<Option<MotifPair>>> {
    valmod_core::validate_length_range(ps.len(), l_min, l_max)?;
    (l_min..=l_max)
        .map(|l| {
            let profile = profile_at(ps, l, policy, threads)?;
            Ok(profile.motif_pair().map(|(a, b, d)| MotifPair::new(a, b, l, d)))
        })
        .collect()
}

/// Like [`stomp_range`] but aborts once `deadline` has elapsed, returning
/// what was computed so far and a truncation flag — the bench harness uses
/// this to reproduce the paper's "failed to finish within a reasonable
/// amount of time" entries without hanging the suite.
pub fn stomp_range_with_deadline(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
    threads: usize,
    deadline: std::time::Duration,
) -> Result<(Vec<Option<MotifPair>>, bool)> {
    valmod_core::validate_length_range(ps.len(), l_min, l_max)?;
    let start = std::time::Instant::now();
    let mut out = Vec::with_capacity(l_max - l_min + 1);
    for l in l_min..=l_max {
        if start.elapsed() > deadline {
            return Ok((out, true));
        }
        let profile = profile_at(ps, l, policy, threads)?;
        out.push(profile.motif_pair().map(|(a, b, d)| MotifPair::new(a, b, l, d)));
    }
    Ok((out, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_range;
    use valmod_data::generators::random_walk;

    #[test]
    fn matches_brute_force_over_a_range() {
        let ps = ProfiledSeries::from_values(&random_walk(150, 7)).unwrap();
        let fast = stomp_range(&ps, 8, 14, ExclusionPolicy::HALF, 1).unwrap();
        let slow = brute_force_range(&ps, 8, 14, ExclusionPolicy::HALF).unwrap();
        for (f, s) in fast.iter().zip(&slow) {
            match (f, s) {
                (Some(f), Some(s)) => assert!((f.dist - s.dist).abs() < 1e-6),
                (None, None) => {}
                other => panic!("presence mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn threaded_range_matches_sequential() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 11)).unwrap();
        let seq = stomp_range(&ps, 10, 16, ExclusionPolicy::HALF, 1).unwrap();
        for threads in [2usize, 3, 7, 0] {
            let par = stomp_range(&ps, 10, 16, ExclusionPolicy::HALF, threads).unwrap();
            for (a, b) in seq.iter().zip(&par) {
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!((a.dist - b.dist).abs() < 1e-7, "threads={threads}")
                    }
                    (None, None) => {}
                    other => panic!("threads={threads}: presence mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn deadline_truncates() {
        let ps = ProfiledSeries::from_values(&random_walk(2000, 9)).unwrap();
        let (out, truncated) = stomp_range_with_deadline(
            &ps,
            64,
            256,
            ExclusionPolicy::HALF,
            1,
            std::time::Duration::from_millis(1),
        )
        .unwrap();
        assert!(truncated);
        assert!(out.len() < 193);
    }
}
