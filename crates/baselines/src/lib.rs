//! # valmod-baselines
//!
//! The comparators of the VALMOD evaluation (paper §6.1), all exact:
//!
//! * [`brute`] — `O(n²ℓ)` brute force (the test oracle).
//! * [`stomp_range()`] — STOMP run independently per length (the adapted
//!   fixed-length state of the art).
//! * [`quick_motif()`] — QuickMotif: PAA summaries + Hilbert R-tree, best-first
//!   MBR-pair pruning with early-abandoning refinement.
//! * [`moen()`] — a MOEN-style enumerator of motifs of all lengths whose lower
//!   bound decays multiplicatively per length step (the behaviour §6.2
//!   contrasts with VALMOD's per-profile σ-ratio).
//!
//! Each range-capable entry point takes a wall-clock deadline so the bench
//! harness can reproduce the paper's "did not terminate in reasonable time"
//! outcomes without hanging.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod brute;
pub mod moen;
pub mod quick_motif;
pub mod stomp_range;

pub use brute::{brute_force_motif, brute_force_range};
pub use moen::{moen, MoenOutput};
pub use quick_motif::{quick_motif, quick_motif_range_with_deadline, QuickMotifConfig};
pub use stomp_range::{stomp_range, stomp_range_with_deadline};
