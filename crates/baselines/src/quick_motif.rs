//! QuickMotif (Li, U, Yiu, Gong — ICDE 2015), the paper's fixed-length
//! index-based comparator, reimplemented exactly:
//!
//! 1. every z-normalised subsequence becomes a `d`-dimensional PAA point
//!    (computed in `O(n·d)` from prefix sums);
//! 2. runs of `B` consecutive subsequences form MBRs, packed into a
//!    bulk-loaded Hilbert R-tree (`valmod-index`);
//! 3. node *pairs* are explored best-first by (scaled) `MINDIST`; leaf pairs
//!    are refined with the PAA lower bound and early-abandoning exact
//!    distances. The search stops when the frontier's `MINDIST` reaches the
//!    best-so-far — which makes the result exact.
//!
//! Its performance hinges on how well PAA summarises the data at the chosen
//! subsequence length — the sensitivity the paper's Figs. 8 and 13 show.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use valmod_data::error::Result;
use valmod_index::paa::paa_dist;
use valmod_index::rtree::{NodeId, RTree};
use valmod_mp::distance::{is_flat, zdist_sq_early_abandon};
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::motif::MotifPair;
use valmod_mp::ProfiledSeries;

/// Tuning parameters for QuickMotif.
#[derive(Debug, Clone, Copy)]
pub struct QuickMotifConfig {
    /// PAA dimensionality `d`.
    pub paa_dims: usize,
    /// Consecutive subsequences per leaf MBR (`B`).
    pub group: usize,
    /// R-tree fanout.
    pub fanout: usize,
}

impl Default for QuickMotifConfig {
    fn default() -> Self {
        QuickMotifConfig { paa_dims: 8, group: 16, fanout: 8 }
    }
}

/// A frontier element: a pair of tree nodes keyed by scaled MINDIST.
struct PairEntry {
    mindist: f64,
    a: NodeId,
    b: NodeId,
}

impl PartialEq for PairEntry {
    fn eq(&self, other: &Self) -> bool {
        self.mindist == other.mindist
    }
}
impl Eq for PairEntry {}
impl PartialOrd for PairEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PairEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest MINDIST first.
        other.mindist.total_cmp(&self.mindist)
    }
}

/// Exact motif-pair discovery at one length via the PAA/R-tree search.
pub fn quick_motif(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    cfg: &QuickMotifConfig,
) -> Result<Option<MotifPair>> {
    let _ = ps.require_pairs(l)?;
    let dims = cfg.paa_dims.min(l);
    let points = paa_points(ps, l, dims);
    let tree = RTree::bulk_load(&points, cfg.group, cfg.fanout);
    let scale = (l as f64 / dims as f64).sqrt();
    let radius = policy.radius(l);

    // Seed the best-so-far with Hilbert-order neighbours: subsequences whose
    // summaries are close on the curve are likely close in shape.
    let mut best: Option<MotifPair> = None;
    let mut bsf_sq = f64::INFINITY;
    let order = hilbert_order(&points);
    for w in order.windows(2) {
        let (i, j) = (w[0], w[1]);
        if i.abs_diff(j) < radius {
            continue;
        }
        try_pair(ps, l, i, j, &mut best, &mut bsf_sq);
    }

    // Best-first search over node pairs.
    let mut heap: BinaryHeap<PairEntry> = BinaryHeap::new();
    let root = tree.root();
    heap.push(PairEntry { mindist: 0.0, a: root, b: root });
    while let Some(PairEntry { mindist, a, b }) = heap.pop() {
        if mindist * mindist >= bsf_sq {
            break; // every remaining pair is at least this far apart
        }
        let (na, nb) = (tree.node(a), tree.node(b));
        match (na.is_leaf(), nb.is_leaf()) {
            (true, true) => {
                for i in na.items.clone() {
                    for j in nb.items.clone() {
                        // Within one leaf, deduplicate unordered pairs; across
                        // two leaves every unordered pair appears exactly once
                        // because the node pair itself is canonical.
                        if (a == b && j <= i) || i.abs_diff(j) < radius {
                            continue;
                        }
                        let lb = paa_dist(&points[i], &points[j], l);
                        if lb * lb >= bsf_sq {
                            continue;
                        }
                        try_pair(ps, l, i, j, &mut best, &mut bsf_sq);
                    }
                }
            }
            (false, _) => {
                for &ca in &na.children {
                    push_pair(&mut heap, &tree, scale, bsf_sq, ca, b);
                }
            }
            (true, false) => {
                for &cb in &nb.children {
                    push_pair(&mut heap, &tree, scale, bsf_sq, a, cb);
                }
            }
        }
    }
    Ok(best)
}

/// Exact motif pairs for every length in a range (the paper's adaptation of
/// QuickMotif, §6.1: one independent run per length), with a wall-clock
/// deadline mirroring the paper's timeout handling.
pub fn quick_motif_range_with_deadline(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
    cfg: &QuickMotifConfig,
    deadline: std::time::Duration,
) -> Result<(Vec<Option<MotifPair>>, bool)> {
    valmod_core::validate_length_range(ps.len(), l_min, l_max)?;
    let start = std::time::Instant::now();
    let mut out = Vec::with_capacity(l_max - l_min + 1);
    for l in l_min..=l_max {
        if start.elapsed() > deadline {
            return Ok((out, true));
        }
        out.push(quick_motif(ps, l, policy, cfg)?);
    }
    Ok((out, false))
}

fn push_pair(
    heap: &mut BinaryHeap<PairEntry>,
    tree: &RTree,
    scale: f64,
    bsf_sq: f64,
    a: NodeId,
    b: NodeId,
) {
    // Canonical orientation avoids exploring (a, b) and (b, a) twice; the
    // self-pair is kept (the motif can live inside one subtree).
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    let mindist = tree.node(a).mbr.min_dist(&tree.node(b).mbr) * scale;
    if mindist * mindist < bsf_sq {
        heap.push(PairEntry { mindist, a, b });
    }
}

fn try_pair(
    ps: &ProfiledSeries,
    l: usize,
    i: usize,
    j: usize,
    best: &mut Option<MotifPair>,
    bsf_sq: &mut f64,
) {
    let t = ps.centered();
    if let Some(d_sq) = zdist_sq_early_abandon(
        &t[i..i + l],
        &t[j..j + l],
        ps.mean_c(i, l),
        ps.std(i, l),
        ps.mean_c(j, l),
        ps.std(j, l),
        *bsf_sq,
    ) {
        if d_sq < *bsf_sq {
            *bsf_sq = d_sq;
            *best = Some(MotifPair::new(i, j, l, d_sq.sqrt()));
        }
    }
}

/// PAA summaries of every z-normalised subsequence, via prefix sums:
/// PAA(znorm(x)) = (PAA(x) − μ)/σ by linearity, so each coordinate is a
/// (fractionally weighted) windowed mean — `O(n·d)` total.
fn paa_points(ps: &ProfiledSeries, l: usize, dims: usize) -> Vec<Vec<f64>> {
    let ndp = ps.num_subsequences(l);
    let t = ps.centered();
    // Prefix sums with fractional evaluation.
    let mut prefix = Vec::with_capacity(t.len() + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in t {
        acc += v;
        prefix.push(acc);
    }
    let frac_at = |x: f64| -> f64 {
        let idx = x.floor() as usize;
        let frac = x - idx as f64;
        if idx >= t.len() {
            prefix[t.len()]
        } else {
            prefix[idx] + frac * t[idx]
        }
    };
    let seg = l as f64 / dims as f64;
    (0..ndp)
        .map(|i| {
            let mu = ps.mean_c(i, l);
            let sigma = ps.std(i, l);
            if is_flat(sigma, mu + ps.offset()) {
                return vec![0.0; dims];
            }
            let inv = 1.0 / sigma;
            (0..dims)
                .map(|k| {
                    let a = i as f64 + k as f64 * seg;
                    let b = i as f64 + (k + 1) as f64 * seg;
                    let mean = (frac_at(b) - frac_at(a)) / seg;
                    (mean - mu) * inv
                })
                .collect()
        })
        .collect()
}

/// Item order along the Hilbert curve of the PAA space (bsf seeding).
fn hilbert_order(points: &[Vec<f64>]) -> Vec<usize> {
    use valmod_index::hilbert::{hilbert_index, quantize};
    let dims = points[0].len();
    let bits = (128 / dims.max(1)).clamp(1, 12) as u32;
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for p in points {
        for k in 0..dims {
            lo[k] = lo[k].min(p[k]);
            hi[k] = hi[k].max(p[k]);
        }
    }
    let mut keyed: Vec<(u128, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let coords: Vec<u32> = (0..dims).map(|k| quantize(p[k], lo[k], hi[k], bits)).collect();
            (hilbert_index(&coords, bits), i)
        })
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::{plant_motif, random_walk, sine_mixture};
    use valmod_mp::stomp::stomp;

    fn check(series: &[f64], l: usize, cfg: &QuickMotifConfig) {
        let ps = ProfiledSeries::from_values(series).unwrap();
        let qm = quick_motif(&ps, l, ExclusionPolicy::HALF, cfg).unwrap();
        let st = stomp(&ps, l, ExclusionPolicy::HALF).unwrap().motif_pair();
        match (qm, st) {
            (Some(q), Some((_, _, d))) => {
                assert!((q.dist - d).abs() < 1e-6, "l={l}: QuickMotif {} vs STOMP {d}", q.dist)
            }
            (None, None) => {}
            other => panic!("presence mismatch: {:?}", other.0),
        }
    }

    #[test]
    fn exact_on_random_walks() {
        let series = random_walk(600, 31);
        for l in [16usize, 32, 64] {
            check(&series, l, &QuickMotifConfig::default());
        }
    }

    #[test]
    fn exact_on_periodic_data() {
        let series = sine_mixture(800, &[(0.01, 1.0), (0.047, 0.3)], 0.1, 5);
        check(&series, 48, &QuickMotifConfig::default());
    }

    #[test]
    fn exact_with_planted_motif() {
        let (series, planted) = plant_motif(2000, 64, 2, 0.001, 3);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let m = quick_motif(&ps, 64, ExclusionPolicy::HALF, &QuickMotifConfig::default())
            .unwrap()
            .unwrap();
        assert!(planted.offsets.iter().any(|&o| m.a.abs_diff(o) <= 2));
        assert!(planted.offsets.iter().any(|&o| m.b.abs_diff(o) <= 2));
    }

    #[test]
    fn exact_across_configurations() {
        let series = random_walk(400, 37);
        for cfg in [
            QuickMotifConfig { paa_dims: 4, group: 8, fanout: 4 },
            QuickMotifConfig { paa_dims: 16, group: 32, fanout: 16 },
            QuickMotifConfig { paa_dims: 2, group: 4, fanout: 2 },
        ] {
            check(&series, 24, &cfg);
        }
    }

    #[test]
    fn paa_dims_larger_than_length_are_clamped() {
        let series = random_walk(200, 39);
        check(&series, 6, &QuickMotifConfig { paa_dims: 64, group: 8, fanout: 4 });
    }

    #[test]
    fn range_deadline_truncates() {
        let ps = ProfiledSeries::from_values(&random_walk(3000, 41)).unwrap();
        let (out, truncated) = quick_motif_range_with_deadline(
            &ps,
            64,
            256,
            ExclusionPolicy::HALF,
            &QuickMotifConfig::default(),
            std::time::Duration::from_millis(1),
        )
        .unwrap();
        assert!(truncated && out.len() < 193);
    }
}
