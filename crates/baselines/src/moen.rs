//! A MOEN-style exact enumerator of motifs of all lengths (after Mueen,
//! *Enumeration of Time Series Motifs of All Lengths*, ICDM 2013 — the
//! paper's variable-length comparator).
//!
//! The original MOEN source is unavailable here, so this is a faithful
//! *structural* reimplementation with the properties §6.2 and §7 of the
//! VALMOD paper ascribe to it (DESIGN.md §2):
//!
//! * per-offset nearest-neighbour caching across lengths;
//! * an admissible lower bound that is *multiplied by a value smaller than
//!   one at every length step* — realised here as the **global** worst-case
//!   σ-ratio `min_x σₓ(L−1)/σₓ(L)`, which lower-bounds every per-profile
//!   ratio and therefore keeps the bound admissible while decaying toward
//!   zero (the looseness VALMOD's per-profile ratio avoids);
//! * a full distance-profile recomputation for every row whose bound fails.
//!
//! ### Admissibility
//!
//! At its anchor, a row's bound is the smallest Eq. 2 `lb_base` over the
//! row, which lower-bounds every pair in the row. Advancing one step
//! multiplies by `min_x σₓ(L−1)/σₓ(L) ≤ σ_row(L−1)/σ_row(L)`, and the
//! product telescopes below the direct σ-ratio — so the row bound stays
//! below every pair's true distance at every length. Rows whose bound
//! reaches the best-so-far can be skipped exactly.

use valmod_core::lb::lb_base;
use valmod_data::error::Result;
use valmod_mp::distance::{is_flat, zdist_naive};
use valmod_mp::distance_profile::{profile_min, self_distance_profile};
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::motif::MotifPair;
use valmod_mp::stomp::stomp;
use valmod_mp::ProfiledSeries;

/// Per-length accounting from a MOEN run.
#[derive(Debug, Clone, Copy)]
pub struct MoenLengthStats {
    /// Subsequence length.
    pub l: usize,
    /// Rows pruned by the decayed bound.
    pub pruned_rows: usize,
    /// Rows whose distance profile was recomputed.
    pub recomputed_rows: usize,
}

/// Output of a MOEN run: the motif of each length, plus pruning accounting.
#[derive(Debug, Clone)]
pub struct MoenOutput {
    /// The motif pair per length (index 0 ↔ `l_min`).
    pub motifs: Vec<Option<MotifPair>>,
    /// Per-length pruning statistics.
    pub stats: Vec<MoenLengthStats>,
    /// Whether the run hit its deadline and stopped early.
    pub truncated: bool,
}

/// Runs the MOEN-style enumeration over `[l_min, l_max]`. A `deadline`
/// mirrors the paper's timeout handling; pass `Duration::MAX` to disable.
pub fn moen(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    policy: ExclusionPolicy,
    deadline: std::time::Duration,
) -> Result<MoenOutput> {
    let start_time = std::time::Instant::now();
    valmod_core::validate_length_range(ps.len(), l_min, l_max)?;
    ps.require_pairs(l_max)?;
    let mut motifs = Vec::with_capacity(l_max - l_min + 1);
    let mut stats = Vec::with_capacity(l_max - l_min + 1);

    // Anchor: full profile at l_min.
    let anchor = stomp(ps, l_min, policy)?;
    let ndp0 = anchor.len();
    motifs.push(anchor.motif_pair().map(|(a, b, d)| MotifPair::new(a, b, l_min, d)));
    stats.push(MoenLengthStats { l: l_min, pruned_rows: 0, recomputed_rows: ndp0 });

    // Row state: the decaying lower bound and the cached NN.
    let mut row_lb: Vec<f64> = (0..ndp0)
        .map(|j| {
            if !anchor.mp[j].is_finite() {
                return 0.0;
            }
            row_bound_from_dist(ps, j, anchor.mp[j], l_min)
        })
        .collect();
    let mut row_nn: Vec<usize> = anchor.ip.clone();
    let mut prev_best = motifs[0];

    for l in (l_min + 1)..=l_max {
        if start_time.elapsed() > deadline {
            return Ok(MoenOutput { motifs, stats, truncated: true });
        }
        let ndp = ps.num_subsequences(l);
        // Global one-step σ-ratio (the MOEN decay factor).
        let mut step = f64::INFINITY;
        for x in 0..ndp {
            let s_old = ps.std(x, l - 1);
            let s_new = ps.std(x, l);
            if s_new > 0.0 {
                step = step.min(s_old / s_new);
            } else {
                step = 0.0;
            }
        }
        let step = step.clamp(0.0, f64::INFINITY).min(f64::INFINITY);

        // Seed best-so-far by extending the previous motif pair.
        let mut best: Option<MotifPair> = None;
        let mut bsf = f64::INFINITY;
        if let Some(prev) = prev_best {
            if prev.b + l <= ps.len() && !policy.is_trivial(prev.a, prev.b, l) {
                let t = ps.centered();
                let d = zdist_naive(&t[prev.a..prev.a + l], &t[prev.b..prev.b + l]);
                best = Some(MotifPair::new(prev.a, prev.b, l, d));
                bsf = d;
            }
        }

        let mut pruned = 0usize;
        let mut recomputed = 0usize;
        for j in 0..ndp {
            row_lb[j] *= step;
            if row_lb[j] >= bsf {
                pruned += 1;
                continue;
            }
            // Bound failed: recompute the whole distance profile of row j.
            let dp = self_distance_profile(ps, j, l, &policy);
            recomputed += 1;
            match profile_min(&dp) {
                Some((arg, d)) => {
                    row_nn[j] = arg;
                    row_lb[j] = row_bound_from_dist(ps, j, d, l);
                    if d < bsf {
                        bsf = d;
                        best = Some(MotifPair::new(j, arg, l, d));
                    }
                }
                None => {
                    row_lb[j] = 0.0;
                    row_nn[j] = usize::MAX;
                }
            }
        }
        motifs.push(best);
        prev_best = best;
        stats.push(MoenLengthStats { l, pruned_rows: pruned, recomputed_rows: recomputed });
    }
    Ok(MoenOutput { motifs, stats, truncated: false })
}

/// The row bound at its (re-)anchor: Eq. 2's `lb_base` for the row's minimum
/// distance, which lower-bounds every pair in the row at every later length
/// once multiplied by the telescoping global σ-ratios.
fn row_bound_from_dist(ps: &ProfiledSeries, j: usize, dist: f64, l: usize) -> f64 {
    if is_flat(ps.std(j, l), ps.mean_c(j, l) + ps.offset()) {
        return 0.0;
    }
    let q = (1.0 - dist * dist / (2.0 * l as f64)).clamp(-1.0, 1.0);
    lb_base(q, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp_range::stomp_range;
    use valmod_data::generators::{plant_motif, random_walk, sine_mixture};

    fn check_exact(series: &[f64], l_min: usize, l_max: usize) {
        let ps = ProfiledSeries::from_values(series).unwrap();
        let out = moen(&ps, l_min, l_max, ExclusionPolicy::HALF, std::time::Duration::MAX).unwrap();
        assert!(!out.truncated);
        let oracle = stomp_range(&ps, l_min, l_max, ExclusionPolicy::HALF, 1).unwrap();
        for (k, (m, o)) in out.motifs.iter().zip(&oracle).enumerate() {
            match (m, o) {
                (Some(m), Some(o)) => assert!(
                    (m.dist - o.dist).abs() < 1e-6,
                    "l={}: MOEN {} vs STOMP {}",
                    l_min + k,
                    m.dist,
                    o.dist
                ),
                (None, None) => {}
                other => panic!("l={}: presence mismatch {:?}", l_min + k, other.0),
            }
        }
    }

    #[test]
    fn exact_on_random_walks() {
        check_exact(&random_walk(300, 51), 16, 28);
    }

    #[test]
    fn exact_on_periodic_data() {
        check_exact(&sine_mixture(350, &[(0.02, 1.0)], 0.05, 53), 20, 30);
    }

    #[test]
    fn exact_with_planted_motifs() {
        let (series, _) = plant_motif(1200, 40, 3, 0.02, 55);
        check_exact(&series, 36, 44);
    }

    #[test]
    fn prunes_at_least_sometimes_on_easy_data() {
        // On smooth periodic data with a decent bsf, some rows should be
        // pruned at small k (before the global factor decays too far).
        let series = sine_mixture(500, &[(0.01, 1.0)], 0.02, 57);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let out = moen(&ps, 32, 36, ExclusionPolicy::HALF, std::time::Duration::MAX).unwrap();
        let pruned: usize = out.stats.iter().map(|s| s.pruned_rows).sum();
        assert!(pruned > 0, "MOEN should prune something on easy data");
    }

    #[test]
    fn bound_decays_making_long_ranges_expensive() {
        // The §6.2 diagnosis: the *fraction* of rows MOEN must recompute
        // does not improve as the bound decays with k (rows shrink in
        // absolute number only because ndp shrinks with ℓ).
        let series = random_walk(400, 59);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let out = moen(&ps, 16, 48, ExclusionPolicy::HALF, std::time::Duration::MAX).unwrap();
        let frac = |s: &MoenLengthStats| {
            s.recomputed_rows as f64 / (s.recomputed_rows + s.pruned_rows).max(1) as f64
        };
        let early: f64 = out.stats[1..6].iter().map(frac).sum::<f64>() / 5.0;
        let late: f64 = out.stats[out.stats.len() - 5..].iter().map(frac).sum::<f64>() / 5.0;
        assert!(
            late >= early - 0.05,
            "recomputed fraction should not improve as the bound decays (early {early:.3}, late {late:.3})"
        );
    }

    #[test]
    fn deadline_truncates() {
        let ps = ProfiledSeries::from_values(&random_walk(2000, 61)).unwrap();
        let out =
            moen(&ps, 64, 256, ExclusionPolicy::HALF, std::time::Duration::from_millis(1)).unwrap();
        assert!(out.truncated);
    }
}
