#!/bin/sh
# Extracts the human-readable blocks from bench_experiments_log.txt for
# pasting into EXPERIMENTS.md. Usage: sh scripts_extract_experiments.sh
sed -n '/############/,$p' /root/repo/bench_experiments_log.txt
