#!/bin/sh
# Final deliverable runs: full test suite and benches, teed to the repo root.
set -x
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo FINALIZE_DONE
