//! # valmod-suite
//!
//! Umbrella crate for the VALMOD reproduction (SIGMOD 2018, *Matrix Profile
//! X: VALMOD — Scalable Discovery of Variable-Length Motifs in Data
//! Series*). It re-exports the workspace crates under one roof and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! Start with [`core::Valmod`] (the builder around the Algorithm 1
//! driver) or the `examples/quickstart.rs` walkthrough; [`obs::Registry`]
//! collects metrics from every layer when attached via
//! [`core::Valmod::recorder`].

#![forbid(unsafe_code)]

pub use valmod_baselines as baselines;
pub use valmod_core as core;
pub use valmod_data as data;
pub use valmod_fft as fft;
pub use valmod_index as index;
pub use valmod_mp as mp;
pub use valmod_obs as obs;
pub use valmod_serve as serve;
