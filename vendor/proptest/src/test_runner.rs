//! Case runner and deterministic PRNG for the mini-proptest.

/// Per-test configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Seed mixed into every case's PRNG; change to explore other inputs.
    pub seed: u64,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, seed: 0x9e37_79b9_7f4a_7c15 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed; the test panics with this message.
    Fail(String),
    /// The case was discarded by `prop_assume!`; a fresh case is drawn.
    Reject,
}

/// SplitMix64: tiny, statistically solid, and fully deterministic.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `body` until `config.cases` cases succeed, panicking on the first
/// failure. Rejected cases (`prop_assume!`) are retried with fresh inputs,
/// up to a global attempt cap.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let max_attempts = (config.cases as u64).saturating_mul(20).max(64);
    let mut successes = 0u32;
    for attempt in 0..max_attempts {
        if successes >= config.cases {
            return;
        }
        // Distinct, deterministic stream per case; independent of ordering.
        let mut rng = TestRng::new(config.seed ^ (attempt.wrapping_mul(0xa076_1d64_78bd_642f)));
        match body(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest `{test_name}` failed at case #{attempt} (seed {:#x}): {msg}",
                config.seed ^ (attempt.wrapping_mul(0xa076_1d64_78bd_642f)),
            ),
        }
    }
    panic!(
        "proptest `{test_name}`: only {successes}/{} cases succeeded within {max_attempts} \
         attempts (too many prop_assume! rejections)",
        config.cases
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let (mut a, mut b) = (TestRng::new(42), TestRng::new(42));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let u = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        run_cases(&ProptestConfig::with_cases(4), "t", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    #[should_panic(expected = "prop_assume")]
    fn everlasting_rejection_panics() {
        run_cases(&ProptestConfig::with_cases(4), "t", |_| Err(TestCaseError::Reject));
    }
}
