//! Offline mini-proptest.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides the subset of the `proptest` 1.x API the workspace's test
//! suites use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, numeric range strategies, tuple strategies, and
//! `prop::collection::vec`. Inputs are generated from a deterministic
//! per-case PRNG (seeded by the test's configuration and case index), so
//! every run explores the same inputs — failures are reproducible without a
//! persisted regression file.
//!
//! Deliberately *not* implemented: shrinking (a failing case reports the
//! inputs' seed instead), `Arbitrary`/`any`, recursive strategies, and the
//! `prop_compose!` macro. Add pieces here only as tests need them.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `proptest::collection`: strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the `prop` module alias exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic random-input tests (mirror of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
