//! Input-generation strategies for the mini-proptest.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (mirror of
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // Interpolate instead of scaling a width: immune to overflow for
        // spans like -1e300..1e300.
        let u = rng.next_unit_f64();
        self.start * (1.0 - u) + self.end * u
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = rng.next_unit_f64();
        self.start() * (1.0 - u) + self.end() * u
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0usize..=0).generate(&mut rng);
            assert_eq!(w, 0);
            let x = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let v = (-1e3..1e3f64).generate(&mut rng);
            assert!(v.is_finite() && (-1e3..1e3).contains(&v));
            let huge = (-1e300..1e300f64).generate(&mut rng);
            assert!(huge.is_finite());
        }
    }

    #[test]
    fn tuples_and_vecs_compose() {
        let mut rng = TestRng::new(3);
        let strat = crate::collection::vec((0.0..1.0f64, 1u8..3), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (f, i) in v {
                assert!((0.0..1.0).contains(&f));
                assert!((1..3).contains(&i));
            }
        }
    }
}
