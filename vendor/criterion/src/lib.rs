//! Offline mini-criterion.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides the subset of the `criterion` API the workspace's benches
//! use: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a timed warm-up, then
//! `sample_size` timed samples whose median/min/max are printed — because
//! the workspace's speed-up claims are ratios between variants measured by
//! the same harness, not absolute statistics. Passing `--test` (as
//! `cargo test --benches` does) runs every benchmark exactly once, so CI
//! checks that the bench code stays alive without paying for measurement.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export: benches may use `criterion::black_box` or `std::hint`'s.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost (mirror of Criterion's enum; the
/// mini harness runs one routine call per setup either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (cloned fresh for every call).
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Times `routine`, one call per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let runs = if self.test_mode { 1 } else { self.sample_size + 1 };
        for i in 0..runs {
            let start = Instant::now();
            std_black_box(routine());
            let elapsed = start.elapsed();
            if i > 0 || self.test_mode {
                self.samples.push(elapsed);
            }
            // First sample doubles as warm-up in measurement mode.
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let runs = if self.test_mode { 1 } else { self.sample_size + 1 };
        for i in 0..runs {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            let elapsed = start.elapsed();
            if i > 0 || self.test_mode {
                self.samples.push(elapsed);
            }
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Registers and runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher<'_>)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
            return;
        }
        samples.sort_unstable();
        if samples.is_empty() {
            println!("{full:<56} (no samples)");
            return;
        }
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{full:<56} median {:>12?}   [min {:>12?}  max {:>12?}]  ({} samples)",
            median,
            lo,
            hi,
            samples.len()
        );
    }

    /// Finishes the group (separator line in the report).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level handle (mirror of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Same CLI contract cargo uses for criterion benches: an optional
        // positional substring filter, `--test` to run once without timing
        // (cargo test --benches), and `--bench` (passed by cargo bench).
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("ecg").to_string(), "ecg");
    }

    #[test]
    fn groups_run_their_closures() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 1), &7, |b, &x| {
                b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(ran, 1); // test mode: exactly one call
    }
}
