//! Variable-length discords: the paper's §8 extension, here used to find an
//! arrhythmia-like anomaly in an ECG-like series *without knowing the
//! anomaly's length* — the VALMP built for motif discovery already contains
//! everything needed.
//!
//! Run with:
//! ```text
//! cargo run --release --example anomaly_hunting
//! ```

use valmod_core::{variable_length_discords, Valmod, ValmodConfig};
use valmod_data::datasets::ecg_like;
use valmod_data::series::Series;
use valmod_mp::ExclusionPolicy;

fn main() {
    // A clean quasi-periodic ECG-like trace…
    let base = ecg_like(12_000, 11);
    let mut values = base.values().to_vec();
    // …with one corrupted stretch (electrode artefact / ectopic beat).
    let artefact = 7_300..7_420;
    for (k, v) in values[artefact.clone()].iter_mut().enumerate() {
        *v += 0.35 * (((k * k) % 17) as f64 - 8.0) / 8.0;
    }
    let series = Series::new(values).expect("finite");
    println!(
        "ECG-like trace: {} points, artefact planted at {:?} (length {})\n",
        series.len(),
        artefact,
        artefact.len()
    );

    // Build the VALMP across lengths 60–160 (≈ half a beat to one beat).
    let config = ValmodConfig::new(60, 160).with_p(8);
    let output = Valmod::from_config(config).run(&series).expect("range fits");

    // Rank variable-length discords: subsequences whose *best* match across
    // every length is still far away.
    let discords = variable_length_discords(&output.valmp, 3, ExclusionPolicy::HALF);
    println!("top variable-length discords:");
    for (rank, d) in discords.iter().enumerate() {
        let inside = d.offset + d.l > artefact.start && d.offset < artefact.end;
        println!(
            "  #{} offset {:>5}  best-matching length {:>3}  score {:.4}   {}",
            rank + 1,
            d.offset,
            d.l,
            d.score,
            if inside { "<-- overlaps the planted artefact" } else { "" }
        );
    }

    let hit = discords
        .first()
        .map(|d| d.offset + d.l > artefact.start && d.offset < artefact.end)
        .unwrap_or(false);
    println!(
        "\n{}",
        if hit {
            "The artefact is the top discord — found without specifying its length."
        } else {
            "warning: expected the planted artefact to rank first."
        }
    );
}
