//! Quickstart: discover variable-length motifs in a series with a planted
//! pattern, in ~30 lines of user code.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use valmod_core::{suggest_length_ranges, top_variable_length_motifs, Valmod, ValmodConfig};
use valmod_data::generators::plant_motif;
use valmod_data::series::Series;
use valmod_mp::ExclusionPolicy;

fn main() {
    // 1. Get a data series. Here: 8 000 points of random walk with three
    //    near-identical copies of a length-120 pattern planted in it.
    let (values, planted) = plant_motif(8_000, 120, 3, 0.02, 42);
    let series = Series::new(values).expect("generated data is finite");
    println!(
        "series: {} points; planted pattern of length {} at offsets {:?}",
        series.len(),
        planted.length,
        planted.offsets
    );

    // 0. Don't know what range to search? Ask the data.
    for hint in suggest_length_ranges(series.values(), 2, 16, 0.15) {
        println!(
            "hint: period ~{} detected (strength {:.2}) — a range like [{}, {}] is promising",
            hint.period, hint.strength, hint.l_min, hint.l_max
        );
    }

    // 2. Run VALMOD over a whole range of lengths — no need to guess the
    //    right one (that is the paper's point).
    let config = ValmodConfig::new(80, 160).with_p(16);
    let output =
        Valmod::from_config(config).run(&series).expect("series is long enough for the range");

    // 3. The best motif across all lengths, under the sqrt(1/ℓ)-normalised
    //    ranking of §3 of the paper.
    let best = output.best_motif().expect("a motif exists");
    println!(
        "best motif: offsets ({}, {}), length {}, zdist {:.4} (normalised {:.4})",
        best.a,
        best.b,
        best.l,
        best.dist,
        best.norm_dist()
    );

    // 4. A ranked list of distinct variable-length motifs.
    println!("\ntop motifs across [80, 160]:");
    for (rank, m) in
        top_variable_length_motifs(&output.valmp, 5, ExclusionPolicy::HALF).iter().enumerate()
    {
        println!(
            "  #{} offsets ({:>5}, {:>5})  length {:>4}  norm-dist {:.4}",
            rank + 1,
            m.a,
            m.b,
            m.l,
            m.norm_dist()
        );
    }

    // 5. And the per-length view (Problem 1): the exact motif of every
    //    length in the range. Print a few.
    println!("\nper-length motifs (every 20th):");
    for report in output.per_length.iter().step_by(20) {
        if let Some(m) = report.motif {
            println!(
                "  ℓ={:>4}  ({:>5}, {:>5})  dist {:.4}  via {:?}",
                report.l, m.a, m.b, m.dist, report.method
            );
        }
    }
}
