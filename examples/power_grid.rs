//! Motif *sets* on a power-load series (the GAP-like dataset): find the
//! top-K variable-length motif pairs and expand each into its set of
//! recurring occurrences (paper §5, Algorithms 5–6) — e.g. "this daily
//! consumption pattern recurs 9 times".
//!
//! Run with:
//! ```text
//! cargo run --release --example power_grid
//! ```

use valmod_core::{compute_var_length_motif_sets, Valmod, ValmodConfig};
use valmod_data::datasets::gap_like;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    // One month of per-minute load data (43 200 points) is generous for a
    // demo; a week keeps the example snappy.
    let series = gap_like(10_080, 20_25);
    println!("power-load series: {} points (one week at 1/min)\n", series.len());

    // Motifs from 2 h to 3 h of load shape, with top-5 pair tracking.
    let config = ValmodConfig::new(120, 180).with_p(10).with_pair_tracking(5);
    let output = Valmod::from_config(config).run(&series).expect("range fits");

    let ps = ProfiledSeries::new(&series);
    let best_pairs = output.best_pairs.as_ref().expect("tracking was enabled");
    println!("top-{} variable-length motif pairs:", best_pairs.len());
    for (rank, pair) in best_pairs.pairs().iter().enumerate() {
        println!(
            "  #{} offsets ({:>5}, {:>5})  length {:>3}  dist {:.4}",
            rank + 1,
            pair.a,
            pair.b,
            pair.l,
            pair.dist
        );
    }

    // Expand pairs into motif sets with radius factor D = 3 (paper Fig. 15
    // explores D ∈ [2, 6]).
    let (sets, stats) = compute_var_length_motif_sets(&ps, best_pairs, 3.0, ExclusionPolicy::HALF);
    println!(
        "\nmotif sets (D = 3): {} sets; {} expansions served from snapshots, {} recomputed",
        sets.len(),
        stats.served_from_snapshots,
        stats.recomputed_profiles
    );
    for (rank, set) in sets.iter().enumerate() {
        let mut offsets: Vec<usize> = set.members.iter().map(|m| m.offset).collect();
        offsets.sort_unstable();
        println!(
            "  set #{}: length {:>3}, radius {:.3}, frequency {:>2}, occurrences at {:?}",
            rank + 1,
            set.l,
            set.radius,
            set.frequency(),
            offsets
        );
    }

    // The motif-set step costs orders of magnitude less than VALMP itself —
    // the Fig. 15 observation — so exploring different radius factors is
    // interactive.
    println!("\nfrequencies across radius factors:");
    for d in [2.0, 3.0, 4.0, 5.0, 6.0] {
        let start = std::time::Instant::now();
        let (sets, _) = compute_var_length_motif_sets(&ps, best_pairs, d, ExclusionPolicy::HALF);
        let freq: Vec<usize> = sets.iter().map(|s| s.frequency()).collect();
        println!(
            "  D = {d}: frequencies {:?} ({:.3} ms)",
            freq,
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}
