//! Streaming monitoring: maintain a matrix profile *online* as sensor
//! samples arrive (`valmod_mp::streaming`, STAMPI-style O(n) appends) and
//! raise an alert the moment a never-before-seen pattern (a discord) shows
//! up — the real-time complement of the batch analyses in the other
//! examples.
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use valmod_data::datasets::ecg_like;
use valmod_mp::streaming::StreamingProfile;
use valmod_mp::ExclusionPolicy;

fn main() {
    let l = 96usize;
    // Historical data: two minutes of clean ECG-like telemetry.
    let history = ecg_like(6_000, 3);
    let mut monitor =
        StreamingProfile::new(history.values(), l, ExclusionPolicy::HALF).expect("seed profile");

    // Alert threshold: a new window is anomalous when its nearest-neighbour
    // distance is far above what the history considers normal.
    let baseline = monitor.profile();
    let mut finite: Vec<f64> = baseline.mp.iter().copied().filter(|d| d.is_finite()).collect();
    finite.sort_by(f64::total_cmp);
    let p99 = finite[(finite.len() * 99) / 100];
    let threshold = p99 * 1.25;
    println!(
        "seeded with {} samples; normal NN-distance p99 = {p99:.3}, alert threshold {threshold:.3}\n",
        monitor.len()
    );

    // Live feed: more normal beats, then an arrhythmia-like corruption.
    let feed = ecg_like(9_000, 4);
    let mut incoming = feed.values()[6_000..].to_vec();
    for (k, v) in incoming[1_500..1_620].iter_mut().enumerate() {
        *v += 0.4 * (((k * 13) % 29) as f64 - 14.0) / 14.0;
    }

    let mut alerts: Vec<usize> = Vec::new();
    for (step, sample) in incoming.iter().enumerate() {
        monitor.append(*sample).expect("finite sample");
        // The newest complete window ends at the appended sample.
        let newest = monitor.len() - l;
        let nn_dist = monitor.newest_nn_dist().unwrap_or(f64::INFINITY);
        if nn_dist.is_finite() && nn_dist > threshold {
            // Suppress repeated alerts for overlapping windows.
            if alerts.last().is_none_or(|&last| newest > last + l / 2) {
                println!(
                    "ALERT at stream position {step:>5} (window offset {newest}): NN distance {nn_dist:.3}"
                );
                alerts.push(newest);
            }
        }
    }
    // The corruption sits at appended positions 1500..1620, i.e. global
    // sample positions 7500..7620 (after the 6 000-sample history).
    let (corrupt_lo, corrupt_hi) = (6_000 + 1_500, 6_000 + 1_620);
    println!(
        "\nprocessed {} live samples, {} alert(s); corruption injected at global positions {corrupt_lo}..{corrupt_hi}",
        incoming.len(),
        alerts.len()
    );
    if alerts.iter().any(|&w| w + l > corrupt_lo && w < corrupt_hi) {
        println!("the injected anomaly was caught online.");
    } else {
        println!("warning: expected an alert inside the corrupted region.");
    }
}
