//! Seismology-flavoured workflow (the paper's §7 motivation: exactness
//! matters in seismological analysis): find repeating earthquake waveforms
//! in a continuous record, then match them against a second station's
//! record with an AB-join.
//!
//! Run with:
//! ```text
//! cargo run --release --example seismology
//! ```

use valmod_core::{Valmod, ValmodConfig};
use valmod_data::generators::Gaussian;
use valmod_data::series::Series;
use valmod_mp::join::closest_cross_pair;
use valmod_mp::ProfiledSeries;

/// A synthetic earthquake waveform: an exponentially decaying wave packet.
fn quake(len: usize, freq: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = i as f64;
            (-(t / (len as f64 / 4.0))).exp() * (std::f64::consts::TAU * freq * t).sin() * 5.0
        })
        .collect()
}

/// A continuous noisy record with the given events planted at offsets.
fn record(n: usize, events: &[(usize, &[f64])], seed: u64) -> Vec<f64> {
    let mut g = Gaussian::new(seed);
    let mut out: Vec<f64> = (0..n).map(|_| 0.3 * g.sample()).collect();
    for &(offset, wave) in events {
        for (k, &w) in wave.iter().enumerate() {
            out[offset + k] += w * (1.0 + 0.03 * g.sample());
        }
    }
    out
}

fn main() {
    // Station A: three repeats of the same event (a "repeating earthquake"
    // sequence) at slightly different times.
    let wave = quake(300, 0.03);
    let station_a = record(20_000, &[(2_500, &wave), (9_100, &wave), (15_800, &wave)], 1);
    // Station B: the same source observed later, once.
    let station_b = record(12_000, &[(6_400, &wave)], 2);

    // 1. Variable-length motif discovery finds the repeating sequence in A
    //    without knowing the wave duration.
    let series_a = Series::new(station_a.clone()).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(220, 360).with_p(10)).run(&series_a).unwrap();
    let best = out.best_motif().expect("a motif exists");
    println!(
        "station A: best repeating waveform at offsets ({}, {}), length {}, dist {:.4}",
        best.a, best.b, best.l, best.dist
    );
    let near = |x: usize, target: usize| x.abs_diff(target) <= 360;
    let hits =
        [2_500usize, 9_100, 15_800].iter().filter(|&&t| near(best.a, t) || near(best.b, t)).count();
    println!("  -> overlaps {hits} of the planted event times");

    // 2. Cross-station confirmation: AB-join the template region of A
    //    against station B's record.
    let template_region = Series::new(station_a[best.a..best.a + best.l].to_vec()).unwrap();
    let pa = ProfiledSeries::new(&template_region);
    let pb = ProfiledSeries::new(&Series::new(station_b).unwrap());
    let l = best.l.min(280);
    let (ia, ib, d) =
        closest_cross_pair(&pa, &pb, l).expect("join runs").expect("a closest pair exists");
    println!(
        "cross-station join (length {l}): template offset {ia} matches station B at {ib} (dist {d:.4})"
    );
    if ib.abs_diff(6_400) <= 400 {
        println!("  -> the same event is recovered at station B without any template tuning.");
    } else {
        println!("  warning: expected the station-B match near offset 6400");
    }
}
