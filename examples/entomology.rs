//! The paper's entomology case study (Figs. 1 and 16), on the EPG-like
//! stand-in series: an insect's Electrical Penetration Graph contains two
//! *semantically different* repeated behaviours of *slightly different
//! lengths* — "probing" and "xylem ingestion". A fixed-length search at
//! either length misses the other behaviour; the variable-length search
//! surfaces both.
//!
//! Run with:
//! ```text
//! cargo run --release --example entomology
//! ```

use valmod_core::{top_variable_length_motifs, Valmod, ValmodConfig};
use valmod_data::datasets::epg_like;
use valmod_mp::ExclusionPolicy;

fn main() {
    // 30 000 points ≈ 50 minutes of EPG at 10 Hz. Probing expresses at
    // ~500 samples, ingestion at ~620 — the "10-second vs 12-second" gap of
    // the paper's Fig. 1.
    let (series, truth) = epg_like(30_000, 500, 620, 7);
    println!(
        "EPG-like recording: {} points\n  planted probing   (len {:>4}) at {:?}\n  planted ingestion (len {:>4}) at {:?}\n",
        series.len(),
        truth.probing_len,
        truth.probing_offsets,
        truth.ingestion_len,
        truth.ingestion_offsets
    );

    // Search the whole behavioural band at once.
    let config = ValmodConfig::new(450, 680).with_p(12);
    let output = Valmod::from_config(config).run(&series).expect("range fits the series");

    let motifs = top_variable_length_motifs(&output.valmp, 4, ExclusionPolicy::HALF);
    println!("top variable-length motifs in [450, 680]:");
    let classify = |offset: usize| -> &'static str {
        let near = |offs: &[usize], len: usize| {
            offs.iter().any(|&o| offset + 100 >= o && offset <= o + len)
        };
        if near(&truth.probing_offsets, truth.probing_len) {
            "probing"
        } else if near(&truth.ingestion_offsets, truth.ingestion_len) {
            "ingestion"
        } else {
            "background"
        }
    };
    let mut found_probing = false;
    let mut found_ingestion = false;
    for (rank, m) in motifs.iter().enumerate() {
        let kind_a = classify(m.a);
        let kind_b = classify(m.b);
        println!(
            "  #{} offsets ({:>5}, {:>5})  length {:>4}  norm-dist {:.4}   [{} / {}]",
            rank + 1,
            m.a,
            m.b,
            m.l,
            m.norm_dist(),
            kind_a,
            kind_b
        );
        found_probing |= kind_a == "probing" && kind_b == "probing";
        found_ingestion |= kind_a == "ingestion" && kind_b == "ingestion";
    }

    println!();
    if found_probing && found_ingestion {
        println!(
            "Both behaviours surfaced as motifs of different lengths — the\n\
             fixed-length search at either length alone would have missed one\n\
             of them (the paper's Fig. 1 observation)."
        );
    } else {
        println!(
            "warning: expected both planted behaviours among the top motifs\n\
             (probing found: {found_probing}, ingestion found: {found_ingestion})"
        );
    }
}
